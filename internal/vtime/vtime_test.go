package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if n, drained := s.Run(100); n != 3 || !drained {
		t.Fatalf("Run = %d, %v", n, drained)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order: %v", got)
	}
	if s.Now() != 30 {
		t.Errorf("final time %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of insertion order: %v", got)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(10, func() {
		fired = append(fired, s.Now())
		s.After(5*time.Nanosecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.At(10, func() { ran = true })
	e.Cancel()
	e.Cancel() // idempotent
	s.Run(100)
	if ran {
		t.Error("cancelled event ran")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestAfterNegativeClamped(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {
		s.After(-time.Second, func() {}) // must not panic
	})
	s.Run(10)
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(12)
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Errorf("after RunUntil(12): %v", got)
	}
	if s.Now() != 12 {
		t.Errorf("Now = %v, want 12", s.Now())
	}
	s.RunFor(3 * time.Nanosecond) // to 15
	if len(got) != 3 || s.Now() != 15 {
		t.Errorf("after RunFor(3): got=%v now=%v", got, s.Now())
	}
}

func TestRunBudget(t *testing.T) {
	s := NewScheduler()
	var rearm func()
	rearm = func() { s.After(1, rearm) }
	s.After(1, rearm)
	n, drained := s.Run(50)
	if drained || n != 50 {
		t.Errorf("Run = %d, %v; want 50, false", n, drained)
	}
}

func TestNextEventAt(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextEventAt(); ok {
		t.Error("empty scheduler reported a next event")
	}
	e := s.At(7, func() {})
	if at, ok := s.NextEventAt(); !ok || at != 7 {
		t.Errorf("NextEventAt = %v, %v", at, ok)
	}
	e.Cancel()
	if _, ok := s.NextEventAt(); ok {
		t.Error("cancelled event still reported")
	}
}

func TestClocks(t *testing.T) {
	s := NewScheduler()
	c := SchedulerClock{S: s}
	s.At(42, func() {
		if c.Now() != 42 {
			t.Errorf("SchedulerClock.Now = %v", c.Now())
		}
	})
	s.Run(10)

	rc := NewRealClock()
	a := rc.Now()
	b := rc.Now()
	if b < a {
		t.Error("real clock went backwards")
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50 * time.Nanosecond)
	if t1 != 150 {
		t.Errorf("Add = %v", t1)
	}
	if t1.Sub(t0) != 50*time.Nanosecond {
		t.Errorf("Sub = %v", t1.Sub(t0))
	}
	if Time(time.Second).String() != "1s" {
		t.Errorf("String = %q", Time(time.Second).String())
	}
}

// Property: N randomly-timed events execute in nondecreasing time order and
// the clock never goes backwards.
func TestQuickOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		n := 1 + r.Intn(100)
		times := make([]Time, n)
		var got []Time
		for i := range times {
			at := Time(r.Intn(1000))
			times[i] = at
			s.At(at, func() { got = append(got, s.Now()) })
		}
		s.Run(uint64(n) + 1)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
