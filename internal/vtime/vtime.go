// Package vtime provides the virtual clock and discrete-event scheduler
// that drive Rover's simulated networks.
//
// The paper's evaluation runs over links as slow as 2.4 Kbit/s, where a
// single 10 KB transfer takes over half a minute of wall-clock time. To
// make those experiments benchable and deterministic, the network simulator
// (internal/netsim) and the simulation benches run the QRPC engines under
// virtual time: events carry explicit timestamps, and the scheduler
// advances the clock discretely from event to event. The same engine code
// runs unchanged under real time with TCP transports; only the source of
// "now" and the delivery mechanism differ.
//
// The scheduler is single-threaded by design: all simulated work happens in
// event callbacks, run one at a time in (time, insertion) order, which is
// what makes simulated runs bit-for-bit reproducible.
package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the
// simulation. It is deliberately a distinct type from time.Time so that
// real timestamps cannot be mixed into a simulation by accident.
type Time int64

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t as a duration since the epoch, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// An Event is a scheduled callback. Cancel prevents a pending event from
// running; cancelling an already-run event is a no-op.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when popped or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Safe to call multiple times.
func (e *Event) Cancel() { e.cancelled = true }

// Scheduler is a discrete-event simulator loop. The zero value is ready to
// use, starting at time 0.
type Scheduler struct {
	now    Time
	events eventHeap
	seq    uint64
	// Ran counts executed events, for tests and runaway detection.
	ran uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Ran returns the number of events executed so far.
func (s *Scheduler) Ran() uint64 { return s.ran }

// Pending returns the number of scheduled, uncancelled events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at the given virtual time. Scheduling in the past
// panics: it indicates a simulation bug, and silently reordering events
// would destroy determinism.
func (s *Scheduler) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("vtime: event scheduled at %v, before now %v", at, s.now))
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.ran++
		e.fn()
		return true
	}
	return false
}

// Run executes events until none remain. maxEvents bounds the run as a
// guard against event loops that reschedule forever; it returns the number
// of events executed and whether the queue drained.
func (s *Scheduler) Run(maxEvents uint64) (executed uint64, drained bool) {
	start := s.ran
	for s.ran-start < maxEvents {
		if !s.Step() {
			return s.ran - start, true
		}
	}
	return s.ran - start, false
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if no event fired at t).
func (s *Scheduler) RunUntil(t Time) {
	for len(s.events) > 0 {
		e := s.peek()
		if e == nil || e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Scheduler) peek() *Event {
	for len(s.events) > 0 {
		e := s.events[0]
		if !e.cancelled {
			return e
		}
		heap.Pop(&s.events)
	}
	return nil
}

// NextEventAt returns the timestamp of the earliest pending event, or false
// if none is scheduled.
func (s *Scheduler) NextEventAt() (Time, bool) {
	if e := s.peek(); e != nil {
		return e.at, true
	}
	return 0, false
}

// eventHeap orders events by (time, insertion sequence) so simultaneous
// events run in the order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock abstracts "what time is it" for code that runs under both real and
// virtual time. The QRPC engines take timestamps as explicit arguments on
// their entry points instead of calling a global clock; Clock exists for
// the adapters (transport pumps, the access manager's background work) that
// need to mint those timestamps.
type Clock interface {
	Now() Time
}

// SchedulerClock adapts a Scheduler to the Clock interface.
type SchedulerClock struct{ S *Scheduler }

// Now returns the scheduler's current virtual time.
func (c SchedulerClock) Now() Time { return c.S.Now() }

// RealClock is a Clock backed by the wall clock, anchored at its creation.
type RealClock struct {
	start time.Time
}

// NewRealClock returns a RealClock anchored at the current instant.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now returns nanoseconds since the clock was created.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }
