package qrpc

import (
	"sync"

	"rover/internal/wire"
)

// workerPool executes request handlers on a bounded set of workers while
// preserving QRPC's ordering contract: requests from one session execute
// serially in arrival order (per-key FIFO), and sessions execute in
// parallel with each other. A worker that drains a run of tasks for one
// session coalesces their replies into a single FrameBatch toward the
// transport, so server-side batching falls out of the same mechanism.
//
// The design is a classic per-key serial executor: each session key owns a
// FIFO task queue; a key with queued work is on the ready list exactly once
// ("active"), claimed by exactly one worker at a time. Workers claim a
// bounded chunk per visit so one chatty session cannot starve the rest.

// maxPoolChunk bounds how many tasks a worker takes from one key per visit
// (fairness across sessions; also the reply-batch size cap).
const maxPoolChunk = 64

// poolTask is one dispatched request. The dup-drop guard (sess.executing)
// was set under the server lock at dispatch time, so a redelivered copy of
// the same request cannot be submitted while this task is anywhere in the
// pool.
type poolTask struct {
	from     Sender
	clientID string
	sess     *session
	handler  Handler
	req      Request
}

type keyQueue struct {
	key    string
	tasks  []poolTask
	active bool // on the ready list or claimed by a worker
}

type workerPool struct {
	srv  *Server
	size int

	mu      sync.Mutex
	cond    *sync.Cond // workers: ready-list non-empty or closed
	quiet   *sync.Cond // quiesce: pending == 0
	queues  map[string]*keyQueue
	ready   []*keyQueue
	pending int // submitted tasks not yet finished (executed or discarded)
	started bool
	closed  bool
	wg      sync.WaitGroup
}

func newWorkerPool(s *Server, size int) *workerPool {
	p := &workerPool{srv: s, size: size, queues: make(map[string]*keyQueue)}
	p.cond = sync.NewCond(&p.mu)
	p.quiet = sync.NewCond(&p.mu)
	return p
}

// submit enqueues a task on its session's FIFO queue, starting the workers
// on first use. Tasks submitted after close are discarded (the server is
// shutting down; clients redeliver).
func (p *workerPool) submit(t poolTask) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.discard(t)
		return
	}
	if !p.started {
		p.started = true
		p.wg.Add(p.size)
		for i := 0; i < p.size; i++ {
			go p.worker()
		}
	}
	kq := p.queues[t.clientID]
	if kq == nil {
		kq = &keyQueue{key: t.clientID}
		p.queues[t.clientID] = kq
	}
	kq.tasks = append(kq.tasks, t)
	p.pending++
	if !kq.active {
		kq.active = true
		p.ready = append(p.ready, kq)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for len(p.ready) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		kq := p.ready[0]
		p.ready = p.ready[1:]
		n := len(kq.tasks)
		if n > maxPoolChunk {
			n = maxPoolChunk
		}
		chunk := kq.tasks[:n:n]
		kq.tasks = kq.tasks[n:]
		// kq stays active while this worker owns the chunk: concurrent
		// submits append to kq.tasks but must not put the key back on the
		// ready list, or a second worker would break per-session ordering.
		p.mu.Unlock()

		p.runChunk(chunk)

		p.mu.Lock()
		p.pending -= n
		if len(kq.tasks) > 0 && !p.closed {
			p.ready = append(p.ready, kq)
			p.cond.Signal()
		} else {
			kq.active = false
			if len(kq.tasks) == 0 {
				delete(p.queues, kq.key)
			}
		}
		if p.pending <= 0 {
			p.quiet.Broadcast()
		}
	}
}

// runChunk executes one session's tasks serially, coalescing consecutive
// replies toward the same transport into one batch frame. When the
// session's journal shard supports staged appends, the whole run commits
// with one fsync (pipelined group commit) before any reply is released;
// otherwise each task pays its own group-commit join.
func (p *workerPool) runChunk(tasks []poolTask) {
	var out []wire.Frame
	var to Sender
	flush := func() {
		if to != nil {
			p.srv.sendCoalesced(to, out)
		}
		out = nil
	}
	if !p.isClosed() {
		if staged, ok := p.srv.executeChunkBatched(tasks); ok {
			// Everything in staged is durable and published; release the
			// replies, grouping consecutive same-transport runs.
			for i := range staged {
				st := &staged[i]
				if st.task.from != to {
					flush()
					to = st.task.from
				}
				out = append(out, wire.Frame{Type: wire.FrameReply, Payload: st.enc})
			}
			flush()
			return
		}
	}
	for i := range tasks {
		t := &tasks[i]
		if p.isClosed() {
			// Shutdown mid-chunk: drop the rest, clearing their dispatch
			// marks so a future server incarnation sharing this session
			// state would not treat redeliveries as in-flight forever.
			flush()
			for _, rest := range tasks[i:] {
				p.discard(rest)
			}
			return
		}
		if t.from != to {
			flush()
			to = t.from
		}
		rep, enc := p.srv.execute(t.sess, t.clientID, t.handler, t.req)
		if rep == nil {
			// Journal refused the execute (poisoned): nothing to release.
			continue
		}
		out = append(out, wire.Frame{Type: wire.FrameReply, Payload: enc})
	}
	flush()
}

// discard un-dispatches a task that will never execute.
func (p *workerPool) discard(t poolTask) {
	p.srv.mu.Lock()
	delete(t.sess.executing, t.req.Seq)
	p.srv.mu.Unlock()
}

func (p *workerPool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// quiesce blocks until no submitted task remains unfinished.
func (p *workerPool) quiesce() {
	p.mu.Lock()
	for p.pending > 0 {
		p.quiet.Wait()
	}
	p.mu.Unlock()
}

// close stops the workers. Queued tasks that no worker has claimed are
// discarded; tasks already claimed finish or are discarded by their worker.
func (p *workerPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var dropped []poolTask
	for _, kq := range p.queues {
		dropped = append(dropped, kq.tasks...)
		p.pending -= len(kq.tasks)
		kq.tasks = nil
	}
	p.ready = nil
	p.cond.Broadcast()
	if p.pending <= 0 {
		p.quiet.Broadcast()
	}
	started := p.started
	p.mu.Unlock()

	for _, t := range dropped {
		p.discard(t)
	}
	if started {
		p.wg.Wait()
	}
}
