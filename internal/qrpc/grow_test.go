package qrpc

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"rover/internal/stable"
)

// TestGrowJournalShardsOnlineExactlyOnce grows a live server's journal
// 1→2→4 shards between bursts of traffic, then restarts against the four
// shard files: every session and reply must recover, and redelivered
// requests replay from cache — growth never costs exactly-once.
func TestGrowJournalShardsOnlineExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("journal.s%d", i))
	}
	openAt := func(i int) stable.Log {
		fl, err := stable.OpenFileLog(paths[i], stable.Options{})
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		return fl
	}

	var mu chanMutex
	execs := map[string]map[uint64]int{}
	handler := func(clientID string, req Request) ([]byte, error) {
		mu.Lock()
		if execs[clientID] == nil {
			execs[clientID] = map[uint64]int{}
		}
		execs[clientID][req.Seq]++
		mu.Unlock()
		return append([]byte("r:"), req.Args...), nil
	}

	logs := []stable.Log{openAt(0)}
	srv1 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv1.Register("echo", handler)
	// Clients chosen to cover all four FUTURE buckets.
	probe := NewServer(ServerConfig{ServerID: "probe", Journals: newShardLogs(4)})
	clients := clientsAcrossShards(t, probe, 4)
	probe.Close()

	up := true
	senders := make([]*harnessSender, len(clients))
	for i, id := range clients {
		senders[i] = &harnessSender{up: &up}
		srv1.OnConnect(senders[i], 0)
		srv1.OnFrame(senders[i], helloFrame(id, 1), 0)
		srv1.OnFrame(senders[i], requestFrame(1, "echo", []byte(id+"-a")), 0)
	}

	if err := srv1.GrowJournalShards([]stable.Log{openAt(1)}); err != nil {
		t.Fatalf("grow 1→2: %v", err)
	}
	if n := srv1.JournalShardCount(); n != 2 {
		t.Fatalf("shard count after first growth = %d, want 2", n)
	}
	for i, id := range clients {
		srv1.OnFrame(senders[i], requestFrame(2, "echo", []byte(id+"-b")), 0)
	}

	if err := srv1.GrowJournalShards([]stable.Log{openAt(2), openAt(3)}); err != nil {
		t.Fatalf("grow 2→4: %v", err)
	}
	if n := srv1.JournalShardCount(); n != 4 {
		t.Fatalf("shard count after second growth = %d, want 4", n)
	}
	for i, id := range clients {
		srv1.OnFrame(senders[i], requestFrame(3, "echo", []byte(id+"-c")), 0)
	}
	if got := srv1.Stats().JournalShardGrowths; got != 2 {
		t.Fatalf("JournalShardGrowths = %d, want 2", got)
	}
	if err := srv1.JournalError(); err != nil {
		t.Fatalf("journal poisoned by growth: %v", err)
	}
	srv1.Close()
	for _, l := range logs {
		l.Close()
	}

	// Restart against the grown shard set.
	logs = make([]stable.Log, 4)
	for i := range logs {
		logs[i] = openAt(i)
	}
	defer func() {
		for _, l := range logs {
			l.Close()
		}
	}()
	srv2 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv2.Register("echo", handler)
	defer srv2.Close()
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery after online growth failed: %v", err)
	}
	st := srv2.Stats()
	if st.RecoveredSessions != 4 || st.RecoveredReplies != 12 {
		t.Fatalf("recovered sessions=%d replies=%d, want 4/12", st.RecoveredSessions, st.RecoveredReplies)
	}
	for i, id := range clients {
		snd := &harnessSender{up: &up}
		srv2.OnConnect(snd, 0)
		srv2.OnFrame(snd, helloFrame(id, 1), 0)
		snd.queue = nil
		for seq := uint64(1); seq <= 3; seq++ {
			srv2.OnFrame(snd, requestFrame(seq, "echo", []byte(id)), 0)
		}
		reps := drainReplies(t, snd)
		if len(reps) != 3 {
			t.Fatalf("client %d: redelivery got %d replies, want 3", i, len(reps))
		}
		suffix := map[uint64]string{1: "-a", 2: "-b", 3: "-c"}
		for _, rep := range reps {
			want := "r:" + id + suffix[rep.Seq]
			if rep.Status != StatusOK || string(rep.Result) != want {
				t.Errorf("client %d recovered reply %d = %q, want %q", i, rep.Seq, rep.Result, want)
			}
		}
		mu.Lock()
		for seq, c := range execs[id] {
			if c != 1 {
				t.Errorf("client %d seq %d executed %d times across growth+restart, want 1", i, seq, c)
			}
		}
		mu.Unlock()
	}
}

// TestGrowJournalShardsRejectsMisuse covers the guard rails: growing a
// journal-less server errors, and empty growth is a no-op.
func TestGrowJournalShardsRejectsMisuse(t *testing.T) {
	srv := NewServer(ServerConfig{ServerID: "srv"})
	defer srv.Close()
	if err := srv.GrowJournalShards(newShardLogs(1)); err == nil {
		t.Fatal("grew the journal of a journal-less server")
	}
	j := NewServer(ServerConfig{ServerID: "srv", Journals: newShardLogs(2)})
	defer j.Close()
	if err := j.GrowJournalShards(nil); err != nil {
		t.Fatalf("empty growth errored: %v", err)
	}
	if n := j.JournalShardCount(); n != 2 {
		t.Fatalf("empty growth changed the shard count to %d", n)
	}
}

// TestGrowJournalShardsUnderConcurrentTraffic races executes against two
// online growths (run under -race): no lost or duplicated execution, no
// journal poisoning, and every session's appends land in its current home.
func TestGrowJournalShardsUnderConcurrentTraffic(t *testing.T) {
	srv := NewServer(ServerConfig{ServerID: "srv", Journals: newShardLogs(1)})
	defer srv.Close()
	var mu chanMutex
	execs := map[string]int{}
	srv.Register("echo", func(clientID string, req Request) ([]byte, error) {
		mu.Lock()
		execs[clientID]++
		mu.Unlock()
		return req.Args, nil
	})

	const workers = 8
	const perWorker = 50
	up := true
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("traffic-%d", w)
			snd := &harnessSender{up: &up}
			srv.OnConnect(snd, 0)
			srv.OnFrame(snd, helloFrame(id, 1), 0)
			<-start
			for seq := uint64(1); seq <= perWorker; seq++ {
				srv.OnFrame(snd, requestFrame(seq, "echo", []byte{byte(seq)}), 0)
			}
		}(w)
	}
	close(start)
	for _, batch := range [][]stable.Log{newShardLogs(1), newShardLogs(2)} {
		if err := srv.GrowJournalShards(batch); err != nil {
			t.Fatalf("growth under traffic: %v", err)
		}
	}
	wg.Wait()
	if err := srv.JournalError(); err != nil {
		t.Fatalf("journal poisoned under concurrent growth: %v", err)
	}
	if n := srv.JournalShardCount(); n != 4 {
		t.Fatalf("shard count = %d, want 4", n)
	}
	mu.Lock()
	defer mu.Unlock()
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("traffic-%d", w)
		if execs[id] != perWorker {
			t.Errorf("client %s executed %d requests, want %d", id, execs[id], perWorker)
		}
	}
}
