package qrpc

import (
	"context"
	"sync"
)

// A Promise is the handle returned by a non-blocking QRPC. The paper
// borrows the construct from Liskov & Shrira: "Import returns a promise.
// Applications can wait on this promise or continue computation. The
// callback will be invoked upon arrival of the imported object."
//
// Promises work identically under real and virtual time: completion
// closes a channel, so real-time callers Wait (or select on Done), while
// simulation code inspects Ready after the scheduler runs.
type Promise struct {
	seq  uint64
	done chan struct{}

	mu       sync.Mutex
	result   []byte
	err      error
	complete bool
	onDone   []func(*Promise)
}

func newPromise(seq uint64) *Promise {
	return &Promise{seq: seq, done: make(chan struct{})}
}

// Seq returns the request's sequence number (useful in logs and tests).
func (p *Promise) Seq() uint64 { return p.seq }

// Done returns a channel closed when the promise completes.
func (p *Promise) Done() <-chan struct{} { return p.done }

// Ready reports whether the promise has completed.
func (p *Promise) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.complete
}

// Result returns the outcome. It is only meaningful once the promise is
// ready; before that it returns (nil, nil) and ok=false.
func (p *Promise) Result() (result []byte, err error, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.result, p.err, p.complete
}

// Wait blocks until completion or context cancellation.
func (p *Promise) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-p.done:
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.result, p.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// OnComplete registers fn to run when the promise completes. If it is
// already complete, fn runs immediately. Callbacks run on the engine's
// delivery path (the simulator event or the transport pump goroutine), so
// they must not block; they may re-enter the engine (enqueue follow-up
// requests), which is the paper's click-ahead pattern.
func (p *Promise) OnComplete(fn func(*Promise)) {
	p.mu.Lock()
	if p.complete {
		p.mu.Unlock()
		fn(p)
		return
	}
	p.onDone = append(p.onDone, fn)
	p.mu.Unlock()
}

// fulfill completes the promise. It is idempotent; only the first call
// wins. Callbacks run synchronously on the caller's stack, outside the
// promise lock.
func (p *Promise) fulfill(result []byte, err error) {
	p.mu.Lock()
	if p.complete {
		p.mu.Unlock()
		return
	}
	p.result = result
	p.err = err
	p.complete = true
	cbs := p.onDone
	p.onDone = nil
	close(p.done)
	p.mu.Unlock()
	for _, fn := range cbs {
		fn(p)
	}
}
