package qrpc

import (
	"strings"
	"testing"

	"rover/internal/wire"
)

// TestCapsOmittedWhenZero pins mixed-version interop: a Hello or Welcome
// with no capabilities encodes byte-identically to the pre-capability
// format, and the pre-capability bytes decode with Caps == 0. Old peers
// reject messages with trailing bytes, so this is load-bearing.
func TestCapsOmittedWhenZero(t *testing.T) {
	h := &Hello{ClientID: "c", Nonce: []byte{1, 2}, Proof: []byte{3}, LowSeq: 4}
	enc := wire.Marshal(h)
	// Re-encode by hand in the old format (no trailing caps field).
	var b wire.Buffer
	b.PutString(h.ClientID)
	b.PutBytes(h.Nonce)
	b.PutBytes(h.Proof)
	b.PutUvarint(h.LowSeq)
	if string(enc) != string(b.Bytes()) {
		t.Fatal("Hello with zero caps does not match the pre-capability encoding")
	}
	var back Hello
	if err := wire.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Caps != 0 {
		t.Fatalf("old-format Hello decoded Caps = %d, want 0", back.Caps)
	}

	hz := &Hello{ClientID: "c", Caps: CapCompressedBatch}
	var hzBack Hello
	if err := wire.Unmarshal(wire.Marshal(hz), &hzBack); err != nil {
		t.Fatal(err)
	}
	if hzBack.Caps != CapCompressedBatch {
		t.Fatalf("Caps = %d, want %d", hzBack.Caps, CapCompressedBatch)
	}

	w := &Welcome{ServerID: "s", HighSeq: 9}
	var wb wire.Buffer
	wb.PutString(w.ServerID)
	wb.PutUvarint(w.HighSeq)
	if string(wire.Marshal(w)) != string(wb.Bytes()) {
		t.Fatal("Welcome with zero caps does not match the pre-capability encoding")
	}
	var wBack Welcome
	if err := wire.Unmarshal(wb.Bytes(), &wBack); err != nil {
		t.Fatal(err)
	}
	if wBack.Caps != 0 {
		t.Fatalf("old-format Welcome decoded Caps = %d, want 0", wBack.Caps)
	}
}

// bigEcho registers an echo handler and enqueues n highly compressible
// requests, then settles the link.
func pumpCompressible(h *harness, n int) {
	payload := []byte(strings.Repeat("rover toolkit mobile information access ", 30))
	for i := 0; i < n; i++ {
		if _, err := h.client.Enqueue("echo", payload, PriorityNormal, h.now); err != nil {
			h.t.Fatal(err)
		}
	}
	h.client.Pump(h.now)
	h.settle()
}

func TestCompressionNegotiatedEndToEnd(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{ServerID: "srv"})
	h.server.Register("echo", echoHandler)
	h.client.SetCompression(true)
	h.connect()
	pumpCompressible(h, 4)
	if h.client.Stats().ZBatchesSent == 0 {
		t.Error("client never sent a compressed batch despite negotiation")
	}
	if h.server.Stats().ZBatchesSent == 0 {
		t.Error("server never compressed replies despite the client's capability")
	}
	// All requests completed: compressed frames decode to the same traffic.
	if p := h.client.Pending(); p != 0 {
		t.Errorf("%d requests still pending", p)
	}
}

func TestCompressionOffWithoutClientOptIn(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{ServerID: "srv"})
	h.server.Register("echo", echoHandler)
	h.connect()
	pumpCompressible(h, 4)
	if z := h.client.Stats().ZBatchesSent; z != 0 {
		t.Errorf("client sent %d compressed batches without opting in", z)
	}
	if z := h.server.Stats().ZBatchesSent; z != 0 {
		t.Errorf("server sent %d compressed batches to a capless client", z)
	}
}

// TestCompressionOffAgainstOldServer simulates a peer that predates the
// capability: its Welcome carries no caps, so the client must never emit
// a Z frame even though compression is enabled locally.
func TestCompressionOffAgainstOldServer(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{ServerID: "srv"})
	h.client.SetCompression(true)
	h.up = true
	h.client.OnConnect(h.cs, h.now)
	h.cs.queue = nil // discard the Hello; we play the server by hand
	old := &Welcome{ServerID: "old-srv", HighSeq: 0}
	h.client.OnFrame(wire.Frame{Type: wire.FrameWelcome, Payload: wire.Marshal(old)}, h.now)

	payload := []byte(strings.Repeat("compressible compressible ", 40))
	if _, err := h.client.Enqueue("echo", payload, PriorityNormal, h.now); err != nil {
		t.Fatal(err)
	}
	h.client.Pump(h.now)
	for _, f := range h.cs.queue {
		if f.Type == wire.FrameBatchZ {
			t.Fatal("client sent FrameBatchZ to a server that never advertised the capability")
		}
	}
	if h.client.Stats().ZBatchesSent != 0 {
		t.Error("ZBatchesSent nonzero against an old server")
	}
}

// TestCorruptZBatchDroppedAndRedelivered pins the recovery contract: a
// Z frame whose deflated tail is mangled in flight is dropped like a bad
// checksum, and retransmission completes the request.
func TestCorruptZBatchDroppedAndRedelivered(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{ServerID: "srv"})
	h.server.Register("echo", echoHandler)
	h.client.SetCompression(true)
	h.connect()

	payload := []byte(strings.Repeat("rover toolkit mobile information access ", 30))
	p, err := h.client.Enqueue("echo", payload, PriorityNormal, h.now)
	if err != nil {
		t.Fatal(err)
	}
	h.client.Pump(h.now)
	if len(h.cs.queue) != 1 || h.cs.queue[0].Type != wire.FrameBatchZ {
		t.Fatalf("expected one Z frame queued, got %d frames (first %v)", len(h.cs.queue), h.cs.queue[0].Type)
	}
	// Corrupt the deflated tail in flight and deliver it.
	bad := h.cs.queue[0]
	h.cs.queue = nil
	bad.Payload = append([]byte(nil), bad.Payload...)
	for i := len(bad.Payload) - 6; i < len(bad.Payload); i++ {
		bad.Payload[i] ^= 0xFF
	}
	h.server.OnFrame(h.sc, bad, h.now)
	if len(h.sc.queue) != 0 {
		t.Fatal("server acted on a corrupt compressed batch")
	}
	if _, _, done := p.Result(); done {
		t.Fatal("request completed off a corrupt frame")
	}
	// Retransmit (a reconnect cycle redelivers everything unacked).
	h.disconnect()
	h.connect()
	if res, rerr, done := p.Result(); !done || rerr != nil || len(res) == 0 {
		t.Fatalf("request not recovered after corrupt Z frame: %v %v %v", res, rerr, done)
	}
}
