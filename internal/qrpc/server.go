package qrpc

import (
	"fmt"
	"sync"

	"rover/internal/auth"
	"rover/internal/vtime"
	"rover/internal/wire"
)

// Handler executes one service request at the server. Handlers run outside
// engine locks and may call back into the server (e.g. SendCallback).
type Handler func(clientID string, req Request) ([]byte, error)

// ServerConfig configures a server engine.
type ServerConfig struct {
	// ServerID names this server in Welcome frames and logs.
	ServerID string
	// Auth, when non-nil, makes the server verify Hello proofs and reject
	// unauthenticated sessions.
	Auth *auth.Registry
}

// session is the per-client redelivery state. It lives across transport
// connections (and server-side, across client crashes): the reply cache is
// what makes redelivered requests idempotent.
type session struct {
	clientID  string
	replies   map[uint64]*Reply // executed but unacknowledged
	executing map[uint64]bool   // in handler right now
	// acked records individually acknowledged sequence numbers. A plain
	// high-watermark is NOT sound here: replies complete out of order
	// (priorities, retransmission on lossy links), and dropping every
	// redelivery at or below the highest acked seq would starve
	// still-pending lower sequence numbers forever. Entries are pruned by
	// the LowSeq each Hello advertises (everything below it is complete
	// on the client).
	acked   map[uint64]bool
	maxExec uint64
	lowSeq  uint64
	sender  Sender // most recent transport, for callbacks
}

// conn is per-transport state: which client the transport authenticated as.
type conn struct {
	clientID string
	authed   bool
}

// Server is the server-side QRPC engine: it dispatches requests to
// registered service handlers with at-most-once execution semantics.
type Server struct {
	mu       sync.Mutex
	cfg      ServerConfig
	handlers map[string]Handler
	sessions map[string]*session
	conns    map[Sender]*conn
	stats    ServerStats
}

// NewServer builds a server engine.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		cfg:      cfg,
		handlers: make(map[string]Handler),
		sessions: make(map[string]*session),
		conns:    make(map[Sender]*conn),
	}
}

// Register installs a service handler.
func (s *Server) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[service] = h
}

// OnConnect registers a transport. Nothing is sent until its Hello.
func (s *Server) OnConnect(from Sender, now vtime.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[from] = &conn{}
}

// OnDisconnect forgets a transport. Session state (the reply cache)
// survives; only the live connection is dropped.
func (s *Server) OnDisconnect(from Sender, now vtime.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cn := s.conns[from]
	delete(s.conns, from)
	if cn != nil && cn.clientID != "" {
		if sess := s.sessions[cn.clientID]; sess != nil && sess.sender == from {
			sess.sender = nil
		}
	}
}

// OnFrame processes one frame from a transport.
func (s *Server) OnFrame(from Sender, f wire.Frame, now vtime.Time) {
	switch f.Type {
	case wire.FrameHello:
		s.onHello(from, f.Payload)
	case wire.FrameRequest:
		s.onRequest(from, f.Payload, now)
	case wire.FrameAck:
		s.onAck(from, f.Payload)
	case wire.FramePing:
		from.SendFrame(wire.Frame{Type: wire.FramePong})
	}
}

func (s *Server) onHello(from Sender, payload []byte) {
	var h Hello
	if err := wire.Unmarshal(payload, &h); err != nil {
		return
	}
	s.mu.Lock()
	cn := s.conns[from]
	if cn == nil {
		cn = &conn{}
		s.conns[from] = cn
	}
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Verify(h.ClientID, h.Nonce, h.Proof); err != nil {
			s.stats.AuthFailures++
			s.mu.Unlock()
			from.SendFrame(wire.Frame{Type: wire.FrameAuthReject})
			return
		}
	}
	cn.clientID = h.ClientID
	cn.authed = true
	sess := s.sessionLocked(h.ClientID)
	sess.sender = from
	if h.LowSeq > sess.lowSeq {
		sess.lowSeq = h.LowSeq
		// Everything below LowSeq has been consumed by the client; cached
		// replies and ack records there are dead weight.
		for seq := range sess.replies {
			if seq < sess.lowSeq {
				delete(sess.replies, seq)
			}
		}
		for seq := range sess.acked {
			if seq < sess.lowSeq {
				delete(sess.acked, seq)
			}
		}
	}
	w := &Welcome{ServerID: s.cfg.ServerID, HighSeq: sess.maxExec}
	s.mu.Unlock()
	from.SendFrame(wire.Frame{Type: wire.FrameWelcome, Payload: wire.Marshal(w)})
}

func (s *Server) sessionLocked(clientID string) *session {
	sess := s.sessions[clientID]
	if sess == nil {
		sess = &session{
			clientID:  clientID,
			replies:   make(map[uint64]*Reply),
			executing: make(map[uint64]bool),
			acked:     make(map[uint64]bool),
		}
		s.sessions[clientID] = sess
	}
	return sess
}

func (s *Server) onRequest(from Sender, payload []byte, now vtime.Time) {
	var req Request
	if err := wire.Unmarshal(payload, &req); err != nil {
		return
	}
	s.mu.Lock()
	cn := s.conns[from]
	if cn == nil || !cn.authed {
		// Requests before a (valid) Hello are dropped; the client will
		// redeliver after it completes a handshake.
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	sess := s.sessionLocked(cn.clientID)
	sess.sender = from
	s.stats.Requests++
	if cached, ok := sess.replies[req.Seq]; ok {
		// Redelivered request already executed: replay the reply.
		s.stats.ReplaysServed++
		s.mu.Unlock()
		from.SendFrame(wire.Frame{Type: wire.FrameReply, Payload: wire.Marshal(cached)})
		return
	}
	if sess.acked[req.Seq] || req.Seq < sess.lowSeq || sess.executing[req.Seq] {
		// Acked (the client has the reply), already complete per the
		// client's own LowSeq, or currently executing: drop.
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	handler := s.handlers[req.Service]
	sess.executing[req.Seq] = true
	clientID := cn.clientID
	s.mu.Unlock()

	// Execute outside the lock: handlers may be slow and may re-enter the
	// server (SendCallback).
	rep := &Reply{Seq: req.Seq}
	if handler == nil {
		rep.Status = StatusNoService
		rep.ErrMsg = req.Service
	} else if result, err := handler(clientID, req); err != nil {
		rep.Status = StatusAppError
		rep.ErrMsg = err.Error()
	} else {
		rep.Status = StatusOK
		rep.Result = result
	}

	s.mu.Lock()
	delete(sess.executing, req.Seq)
	sess.replies[req.Seq] = rep
	if req.Seq > sess.maxExec {
		sess.maxExec = req.Seq
	}
	s.stats.Executed++
	s.mu.Unlock()
	from.SendFrame(wire.Frame{Type: wire.FrameReply, Payload: wire.Marshal(rep)})
}

func (s *Server) onAck(from Sender, payload []byte) {
	var ack Ack
	if err := wire.Unmarshal(payload, &ack); err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cn := s.conns[from]
	if cn == nil || !cn.authed {
		return
	}
	sess := s.sessionLocked(cn.clientID)
	for _, seq := range ack.Seqs {
		delete(sess.replies, seq)
		sess.acked[seq] = true
		s.stats.AcksReceived++
	}
}

// SendCallback pushes a notification to a client's current transport. It
// reports false when the client has no live connection (the notification
// is dropped; callbacks are an optimization, not a correctness mechanism —
// disconnected clients revalidate on import).
func (s *Server) SendCallback(clientID, topic string, payload []byte) bool {
	s.mu.Lock()
	sess := s.sessions[clientID]
	var snd Sender
	if sess != nil {
		snd = sess.sender
	}
	s.mu.Unlock()
	if snd == nil {
		return false
	}
	cb := &Callback{Topic: topic, Payload: payload}
	if snd.SendFrame(wire.Frame{Type: wire.FrameCallback, Payload: wire.Marshal(cb)}) {
		s.mu.Lock()
		s.stats.CallbacksSent++
		s.mu.Unlock()
		return true
	}
	return false
}

// BroadcastCallback sends a notification to every connected client except
// the named one (used to propagate object invalidations to other caches).
func (s *Server) BroadcastCallback(exceptClientID, topic string, payload []byte) int {
	s.mu.Lock()
	var targets []Sender
	for id, sess := range s.sessions {
		if id != exceptClientID && sess.sender != nil {
			targets = append(targets, sess.sender)
		}
	}
	s.mu.Unlock()
	cb := &Callback{Topic: topic, Payload: payload}
	frame := wire.Frame{Type: wire.FrameCallback, Payload: wire.Marshal(cb)}
	n := 0
	for _, snd := range targets {
		if snd.SendFrame(frame) {
			n++
		}
	}
	s.mu.Lock()
	s.stats.CallbacksSent += int64(n)
	s.mu.Unlock()
	return n
}

// Stats returns a snapshot of the engine counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SessionInfo describes one client session for inspection tools.
type SessionInfo struct {
	ClientID      string
	CachedReplies int
	MaxExecuted   uint64
	// AckedPending counts ack records awaiting LowSeq pruning.
	AckedPending int
	Connected    bool
}

// Sessions lists the server's client sessions.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{
			ClientID:      sess.clientID,
			CachedReplies: len(sess.replies),
			MaxExecuted:   sess.maxExec,
			AckedPending:  len(sess.acked),
			Connected:     sess.sender != nil,
		})
	}
	return out
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("qrpc.Server(%s)", s.cfg.ServerID)
}
