package qrpc

import (
	"fmt"
	"sync"

	"rover/internal/auth"
	"rover/internal/stable"
	"rover/internal/vtime"
	"rover/internal/wire"
)

// Handler executes one service request at the server. Handlers run outside
// engine locks and may call back into the server (e.g. SendCallback).
type Handler func(clientID string, req Request) ([]byte, error)

// ServerConfig configures a server engine.
type ServerConfig struct {
	// ServerID names this server in Welcome frames and logs.
	ServerID string
	// Auth, when non-nil, makes the server verify Hello proofs and reject
	// unauthenticated sessions.
	Auth *auth.Registry
	// Workers selects the handler execution model:
	//
	//   - 0 (the default): inline. Handlers run synchronously on the
	//     goroutine that delivered the frame, in arrival order. This is
	//     required when the engine is driven by a single-threaded scheduler
	//     (the discrete-event simulator's virtual time) and is what
	//     synchronous tests expect.
	//   - n > 0: a bounded pool of n workers executes handlers. Requests
	//     from one session run serially in arrival order (per-session FIFO);
	//     different sessions run in parallel, and each worker coalesces the
	//     replies of a drained run into one FrameBatch.
	//
	// Pooled servers should be Close()d to stop the workers; Quiesce waits
	// for dispatched requests to finish (connectionless transports use it
	// before harvesting replies).
	Workers int
	// Journal, when non-nil, is the server's durable session journal: each
	// executed request's reply is write-ahead-logged here before it is
	// released, and NewServer replays the journal so exactly-once execution
	// survives server crashes and restarts — a redelivered request after a
	// restart is answered from the recovered reply cache instead of
	// re-running its handler. Journal appends ride the stable log's group
	// commit, so concurrent workers amortize the durability fsync. If the
	// journal fails (stable.ErrPoisoned) or cannot be replayed, the server
	// refuses further executes rather than continue without durability; see
	// JournalError. The caller owns the log and closes it after Close.
	//
	// Journal is the single-shard convenience form; it is ignored when
	// Journals is set.
	Journal stable.Log
	// Journals shards the session journal across N independent stable logs
	// keyed by session hash, so each shard elects its own group-commit
	// fsync leader and up to N fsyncs proceed in parallel instead of every
	// worker convoying behind one (see the package comment in journal.go).
	// All shard logs are replayed and merged at construction; a session
	// recovered outside its home shard (the shard count changed) is
	// resharded once, durably, before the server is reachable. The caller
	// owns the logs and closes them after Close. Shard counts may grow
	// between incarnations but must never shrink — records in dropped logs
	// would be silently unread (rover.NewServer enforces this for its
	// on-disk shard files).
	Journals []stable.Log
	// JournalCompactEvery bounds each journal shard: once more than this
	// many live records accumulate in a shard, a background compaction
	// snapshots that shard's session state into one record and removes the
	// records it supersedes. Zero selects the default (1024).
	JournalCompactEvery int
	// MaxSessions is the admission-control high-water mark: when positive,
	// a Hello from a clientID the server has no session for is refused with
	// a FrameBusy once MaxSessions sessions exist. Established sessions are
	// always re-admitted — refusing them would strand their queued work —
	// so the mark bounds growth, not reconnects; size it with headroom.
	// ServerStats.SessionsRefused counts refusals. Zero disables admission
	// control.
	MaxSessions int
	// SessionBudgetBytes bounds the approximate bytes of executed-but-
	// unacknowledged reply payloads one session may hold. A session at its
	// budget has NEW requests dropped (counted in ServerStats.BudgetRefused)
	// until acks or a Hello LowSeq release cached replies; the client's
	// redelivery machinery retries them later, so the budget is
	// backpressure, not loss. Cached replies are never evicted by the
	// budget — dropping one would re-execute its redelivered request and
	// break at-most-once. Zero means unbounded.
	SessionBudgetBytes int
	// ReplyCacheBytes bounds the server-global cache of encoded replies
	// that lets redelivery replays and replication exec-streaming reuse the
	// encoding produced at execution time instead of re-marshaling (an LRU;
	// eviction only costs a re-marshal on the next replay). Zero selects
	// the default (8 MiB); negative disables the cache.
	ReplyCacheBytes int
}

// session is the per-client redelivery state. It lives across transport
// connections (and server-side, across client crashes): the reply cache is
// what makes redelivered requests idempotent.
type session struct {
	clientID  string
	replies   map[uint64]*Reply // executed but unacknowledged
	executing map[uint64]bool   // in handler right now
	// acked records individually acknowledged sequence numbers. A plain
	// high-watermark is NOT sound here: replies complete out of order
	// (priorities, retransmission on lossy links), and dropping every
	// redelivery at or below the highest acked seq would starve
	// still-pending lower sequence numbers forever. Entries are pruned by
	// the LowSeq each Hello advertises (everything below it is complete
	// on the client).
	acked   map[uint64]bool
	maxExec uint64
	lowSeq  uint64
	sender  Sender // most recent transport, for callbacks
	// replyBytes approximates the payload bytes held in replies (see
	// replyApproxSize); ServerConfig.SessionBudgetBytes bounds it.
	replyBytes int
}

// replyApproxSize is the budget charge for one cached reply: its payload
// bytes plus a small fixed overhead. Computed from the decoded Reply (not
// its encoding) so the charge can be reversed at ack/prune time without
// retaining the encoding.
func replyApproxSize(rep *Reply) int {
	return 16 + len(rep.Result) + len(rep.ErrMsg)
}

// conn is per-transport state: which client the transport authenticated
// as, and which optional capabilities its Hello advertised.
type conn struct {
	clientID string
	authed   bool
	caps     uint64
}

// Server is the server-side QRPC engine: it dispatches requests to
// registered service handlers with at-most-once execution semantics.
type Server struct {
	mu       sync.Mutex
	cfg      ServerConfig
	handlers map[string]Handler
	sessions map[string]*session
	conns    map[Sender]*conn
	stats    ServerStats
	pool     *workerPool // nil in inline mode

	// onExecuted, when set (SetOnExecuted), observes every execution after
	// its reply is recorded in the session cache (and journaled), with the
	// reply's wire encoding so observers need not re-marshal. The
	// replication layer streams these to the peer so a failed-over client's
	// redeliveries are answered from cache there too. Runs outside mu.
	onExecuted func(clientID string, req Request, rep *Reply, enc []byte)

	// replyCache holds encoded replies for the replay path (under mu; nil
	// when disabled). See replycache.go.
	replyCache *replyCache

	// Journal state (see journal.go): journaled is set at construction and
	// never changes; the shards slice is read and replaced under mu —
	// GrowJournalShards may extend it online (existing *journalShard values
	// are never replaced, only appended after). Each shard's gate orders its
	// appends against its compaction. journalErr is sticky and server-wide.
	journaled  bool
	shards     []*journalShard
	growing    bool  // under mu: one online shard growth at a time
	journalErr error // sticky (under mu): recovery or append failure
	compactWG  sync.WaitGroup
}

// NewServer builds a server engine. When cfg.Journals (or the singular
// cfg.Journal) is set, every journal shard is replayed and merged to
// rebuild per-session exactly-once state; if replay fails, the server still
// constructs but refuses to execute requests (JournalError reports why) — a
// half-recovered reply cache must never execute.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		cfg:      cfg,
		handlers: make(map[string]Handler),
		sessions: make(map[string]*session),
		conns:    make(map[Sender]*conn),
	}
	s.replyCache = newReplyCache(cfg.ReplyCacheBytes)
	if cfg.Workers > 0 {
		s.pool = newWorkerPool(s, cfg.Workers)
	}
	journals := cfg.Journals
	if len(journals) == 0 && cfg.Journal != nil {
		journals = []stable.Log{cfg.Journal}
	}
	for i, log := range journals {
		bl, _ := log.(stable.BatchLog)
		s.shards = append(s.shards, &journalShard{idx: i, log: log, batch: bl})
	}
	s.journaled = len(s.shards) > 0
	if s.hasJournal() {
		if err := s.recoverJournal(); err != nil {
			s.journalErr = fmt.Errorf("qrpc: journal recovery: %w", err)
		}
	}
	return s
}

// Register installs a service handler.
func (s *Server) Register(service string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[service] = h
}

// OnConnect registers a transport. Nothing is sent until its Hello.
func (s *Server) OnConnect(from Sender, now vtime.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[from] = &conn{}
}

// OnDisconnect forgets a transport. Session state (the reply cache)
// survives; only the live connection is dropped.
func (s *Server) OnDisconnect(from Sender, now vtime.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cn := s.conns[from]
	delete(s.conns, from)
	if cn != nil && cn.clientID != "" {
		if sess := s.sessions[cn.clientID]; sess != nil && sess.sender == from {
			sess.sender = nil
		}
	}
}

// OnFrame processes one frame from a transport. A batch frame's sub-frames
// are processed in order, and every synchronous response they provoke
// (Welcome, cached replays, pongs, inline replies) is coalesced back into a
// single frame toward the sender.
func (s *Server) OnFrame(from Sender, f wire.Frame, now vtime.Time) {
	var out []wire.Frame
	if f.Type == wire.FrameBatchZ {
		// Drop corrupt compressed batches; the client redelivers.
		zf, err := wire.InflateBatchFrame(f)
		if err != nil {
			return
		}
		f = zf
	}
	if f.Type == wire.FrameBatch {
		subs, err := wire.UnbatchFrames(f.Payload)
		if err != nil {
			return
		}
		for _, sf := range subs {
			s.handleFrame(from, sf, now, &out)
		}
	} else {
		s.handleFrame(from, f, now, &out)
	}
	s.sendCoalesced(from, out)
}

// handleFrame processes one (non-batch) frame, appending any synchronous
// response frames to out rather than sending them directly.
func (s *Server) handleFrame(from Sender, f wire.Frame, now vtime.Time, out *[]wire.Frame) {
	switch f.Type {
	case wire.FrameHello:
		s.onHello(from, f.Payload, out)
	case wire.FrameRequest:
		s.onRequest(from, f.Payload, now, out)
	case wire.FrameAck:
		s.onAck(from, f.Payload)
	case wire.FramePing:
		*out = append(*out, wire.Frame{Type: wire.FramePong})
	}
}

// sendCoalesced delivers the collected response frames to a sender:
// nothing, the lone frame, or one batch for several — compressed when the
// connection's Hello advertised the compressed-batch capability (a single
// frame may also compress then: a large import reply is exactly the case
// the capability exists for).
func (s *Server) sendCoalesced(to Sender, out []wire.Frame) {
	if len(out) == 0 {
		return
	}
	s.mu.Lock()
	cn := s.conns[to]
	zOK := cn != nil && cn.caps&CapCompressedBatch != 0
	s.mu.Unlock()
	f := wire.CoalesceFrames(out, zOK)
	if !to.SendFrame(f) {
		return
	}
	if len(out) > 1 || f.Type == wire.FrameBatchZ {
		s.mu.Lock()
		if len(out) > 1 {
			s.stats.BatchesSent++
		}
		if f.Type == wire.FrameBatchZ {
			s.stats.ZBatchesSent++
		}
		s.mu.Unlock()
	}
}

func (s *Server) onHello(from Sender, payload []byte, out *[]wire.Frame) {
	var h Hello
	if err := wire.Unmarshal(payload, &h); err != nil {
		return
	}
	s.mu.Lock()
	cn := s.conns[from]
	if cn == nil {
		cn = &conn{}
		s.conns[from] = cn
	}
	if s.cfg.Auth != nil {
		if err := s.cfg.Auth.Verify(h.ClientID, h.Nonce, h.Proof); err != nil {
			s.stats.AuthFailures++
			s.mu.Unlock()
			*out = append(*out, wire.Frame{Type: wire.FrameAuthReject})
			return
		}
	}
	if s.cfg.MaxSessions > 0 && s.sessions[h.ClientID] == nil && len(s.sessions) >= s.cfg.MaxSessions {
		// Admission control: past the high-water mark, NEW sessions are
		// refused (a FrameBusy tells the client to rotate to a backup or
		// retry later) while established ones always re-admit — their
		// queued work must be able to drain. The connection stays unauthed,
		// so any requests the client sends anyway are dropped, not executed.
		s.stats.SessionsRefused++
		s.mu.Unlock()
		*out = append(*out, wire.Frame{Type: wire.FrameBusy})
		return
	}
	cn.clientID = h.ClientID
	cn.authed = true
	// Record the intersection of the client's capabilities and ours.
	// Clients that advertised nothing get nothing — including no Caps
	// field in the Welcome, which pre-capability decoders would reject.
	cn.caps = h.Caps & CapCompressedBatch
	sess := s.sessionLocked(h.ClientID)
	sess.sender = from
	pruned := false
	if h.LowSeq > sess.lowSeq {
		pruned = true
		sess.lowSeq = h.LowSeq
		// Everything below LowSeq has been consumed by the client; cached
		// replies and ack records there are dead weight.
		for seq := range sess.replies {
			if seq < sess.lowSeq {
				sess.replyBytes -= replyApproxSize(sess.replies[seq])
				delete(sess.replies, seq)
				s.replyCache.delete(h.ClientID, seq)
			}
		}
		for seq := range sess.acked {
			if seq < sess.lowSeq {
				delete(sess.acked, seq)
			}
		}
	}
	w := &Welcome{ServerID: s.cfg.ServerID, HighSeq: sess.maxExec, Caps: cn.caps}
	s.mu.Unlock()
	if pruned {
		// Journal the new floor so recovery discards the same dead weight.
		// Unlike exec records this is apply-then-log: a lost prune record
		// only means the recovered acked map is larger until the client's
		// next Hello advertises the floor again.
		s.journalSessionRecord(h.ClientID, func() []byte { return encodePruneRecord(h.ClientID, h.LowSeq) })
	}
	*out = append(*out, wire.Frame{Type: wire.FrameWelcome, Payload: wire.Marshal(w)})
}

// journalSessionRecord appends one session record (exec-install, ack or
// prune) to the session's home shard under that shard's gate read side and
// tracks its id for compaction. It is a no-op when no journal is configured
// or the journal is poisoned; an append failure poisons the journal. The
// in-memory state change these records describe proceeds regardless —
// losing one costs recovered-state memory, never correctness.
func (s *Server) journalSessionRecord(clientID string, encode func() []byte) {
	if !s.hasJournal() {
		return
	}
	sh := s.lockShardFor(clientID)
	defer sh.gate.RUnlock()
	s.mu.Lock()
	poisoned := s.journalErr != nil
	s.mu.Unlock()
	if poisoned {
		return
	}
	id, err := sh.log.Append(encode())
	s.mu.Lock()
	if err != nil {
		s.poisonJournalLocked(err)
		s.mu.Unlock()
		return
	}
	sh.ids = append(sh.ids, id)
	s.stats.JournalRecords++
	compact := s.shouldCompactLocked(sh)
	s.mu.Unlock()
	if compact {
		go s.compactJournal(sh.idx)
	}
}

func (s *Server) sessionLocked(clientID string) *session {
	sess := s.sessions[clientID]
	if sess == nil {
		sess = &session{
			clientID:  clientID,
			replies:   make(map[uint64]*Reply),
			executing: make(map[uint64]bool),
			acked:     make(map[uint64]bool),
		}
		s.sessions[clientID] = sess
	}
	return sess
}

func (s *Server) onRequest(from Sender, payload []byte, now vtime.Time, out *[]wire.Frame) {
	var req Request
	if err := wire.Unmarshal(payload, &req); err != nil {
		return
	}
	s.mu.Lock()
	cn := s.conns[from]
	if cn == nil || !cn.authed {
		// Requests before a (valid) Hello are dropped; the client will
		// redeliver after it completes a handshake.
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	sess := s.sessionLocked(cn.clientID)
	sess.sender = from
	s.stats.Requests++
	if cached, ok := sess.replies[req.Seq]; ok {
		// Redelivered request already executed: replay the reply, reusing
		// the encoding cached at execution time when it is still around (a
		// miss — evicted, or recovered from the journal — re-marshals and
		// repopulates the cache).
		s.stats.ReplaysServed++
		enc, hit := s.replyCache.get(cn.clientID, req.Seq)
		if hit {
			s.stats.ReplyCacheHits++
		} else {
			s.stats.ReplyCacheMisses++
			enc = wire.Marshal(cached)
			s.stats.ReplyCacheEvictions += s.replyCache.put(cn.clientID, req.Seq, enc)
		}
		s.mu.Unlock()
		*out = append(*out, wire.Frame{Type: wire.FrameReply, Payload: enc})
		return
	}
	if sess.acked[req.Seq] || req.Seq < sess.lowSeq || sess.executing[req.Seq] {
		// Acked (the client has the reply), already complete per the
		// client's own LowSeq, or currently executing: drop.
		s.stats.Dropped++
		s.mu.Unlock()
		return
	}
	if s.journalErr != nil {
		// The session journal is poisoned (or never recovered): executing
		// would release a reply whose durability cannot be guaranteed,
		// reopening the double-execution window. Cached replays (above)
		// are still served; new work waits for a repaired incarnation.
		s.stats.JournalRefused++
		s.mu.Unlock()
		return
	}
	if s.cfg.SessionBudgetBytes > 0 && sess.replyBytes >= s.cfg.SessionBudgetBytes {
		// The session holds its budget's worth of unacknowledged reply
		// payloads. Dropping the NEW request (never a cached reply — that
		// would break at-most-once) is safe backpressure: the client
		// redelivers it after acks or a Hello LowSeq free the budget.
		s.stats.BudgetRefused++
		s.mu.Unlock()
		return
	}
	handler := s.handlers[req.Service]
	// Marking the request executing at DISPATCH time — before the handler
	// runs, whether inline or queued to the pool — is what keeps redelivered
	// duplicates from executing twice while the first copy is in flight.
	sess.executing[req.Seq] = true
	clientID := cn.clientID
	pool := s.pool
	s.mu.Unlock()

	if pool != nil {
		pool.submit(poolTask{from: from, clientID: clientID, sess: sess, handler: handler, req: req})
		return
	}
	// Inline mode: execute here (outside the lock; handlers may be slow and
	// may re-enter the server, e.g. SendCallback) and coalesce the reply
	// with the rest of the batch's output. A nil reply means the journal
	// refused the execute; nothing may be released.
	if rep, enc := s.execute(sess, clientID, handler, req); rep != nil {
		*out = append(*out, wire.Frame{Type: wire.FrameReply, Payload: enc})
	}
}

// execute runs a dispatched request's handler outside engine locks, records
// the reply in the session's at-most-once cache, and returns it together
// with its wire encoding (marshaled exactly once here; the journal record,
// the reply frame, the encoded-reply cache, and the onExecuted hook all
// reuse it). When the server has a journal, the reply is write-ahead-logged
// to the session's home shard before it is recorded or returned — no
// transport can observe a reply the journal does not hold. A nil return
// means the journal refused the execute (poisoned mid-dispatch or the exec
// append failed): the handler may or may not have run, nothing is released,
// and the client redelivers to a future, repaired incarnation whose
// recovery decides from the journal alone.
func (s *Server) execute(sess *session, clientID string, handler Handler, req Request) (*Reply, []byte) {
	if s.hasJournal() && s.JournalError() != nil {
		// Poisoned between dispatch and execution (e.g. a queued pool task
		// behind the append that failed): refuse before running the handler.
		s.mu.Lock()
		delete(sess.executing, req.Seq)
		s.stats.JournalRefused++
		s.mu.Unlock()
		return nil, nil
	}
	rep := runHandler(clientID, handler, req)
	enc := wire.Marshal(rep)

	journaled := false
	var jid uint64
	var sh *journalShard
	if s.hasJournal() {
		// The durability write, to the session's home shard. Concurrent
		// executes coalesce onto that shard's group-commit fsync — and
		// different shards' leaders fsync in parallel — so this is
		// amortized, not one sync per request. The gate's read side is held
		// across append AND the bookkeeping below — see journalShard.gate.
		sh = s.lockShardFor(clientID)
		defer sh.gate.RUnlock()
		id, err := sh.log.Append(encodeExecRecordEnc(clientID, enc))
		if err != nil {
			s.mu.Lock()
			s.poisonJournalLocked(err)
			delete(sess.executing, req.Seq)
			s.stats.JournalRefused++
			s.mu.Unlock()
			return nil, nil
		}
		jid, journaled = id, true
	}

	s.mu.Lock()
	delete(sess.executing, req.Seq)
	sess.replies[req.Seq] = rep
	sess.replyBytes += replyApproxSize(rep)
	if req.Seq > sess.maxExec {
		sess.maxExec = req.Seq
	}
	s.stats.Executed++
	s.stats.ReplyCacheEvictions += s.replyCache.put(clientID, req.Seq, enc)
	var compact bool
	if journaled {
		sh.ids = append(sh.ids, jid)
		s.stats.JournalRecords++
		compact = s.shouldCompactLocked(sh)
	}
	hook := s.onExecuted
	s.mu.Unlock()
	if compact {
		go s.compactJournal(sh.idx)
	}
	if hook != nil {
		hook(clientID, req, rep, enc)
	}
	return rep, enc
}

// runHandler executes one request's handler and builds its reply. Handler
// panics are not recovered here, matching execute's historical behavior.
func runHandler(clientID string, handler Handler, req Request) *Reply {
	rep := &Reply{Seq: req.Seq}
	if handler == nil {
		rep.Status = StatusNoService
		rep.ErrMsg = req.Service
	} else if result, err := handler(clientID, req); err != nil {
		rep.Status = StatusAppError
		rep.ErrMsg = err.Error()
	} else {
		rep.Status = StatusOK
		rep.Result = result
	}
	return rep
}

// stagedExec is one executed task of a batched chunk: the handler has run
// and its exec record is written to the home shard, but nothing is durable
// or published until the chunk's single commit lands.
type stagedExec struct {
	task poolTask
	rep  *Reply
	enc  []byte
	jid  uint64
}

// executeChunkBatched runs one session's task run with pipelined group
// commit: handlers execute back-to-back in order, each exec record staged
// on the session's home shard WITHOUT waiting for durability, then one
// commit covers the whole run before any reply is published. Per-session
// ordering is untouched — what is amortized is the fsync (a run of K tasks
// joins one group commit instead of K) and the server lock (one bookkeeping
// pass for the run). At-most-once holds throughout: until the commit
// returns, the tasks' dispatch marks (sess.executing) stay set, so a
// concurrent redelivery is dropped rather than answered from a reply whose
// journal record is not yet durable — WAL-before-release is never weakened.
//
// ok=false means the chunk cannot take this path (no journal, or the
// shard's log cannot stage appends — e.g. a fault-injection wrapper); the
// caller falls back to per-task execute(). ok=true with an empty result
// means the journal refused the run (poisoned before or during it): the
// handlers may or may not have run, nothing is released, and the clients
// redeliver to a repaired incarnation.
func (s *Server) executeChunkBatched(tasks []poolTask) (staged []stagedExec, ok bool) {
	if len(tasks) == 0 {
		return nil, true
	}
	if !s.hasJournal() {
		return nil, false
	}
	// The gate's read side is held across every staged append AND the
	// bookkeeping below, exactly like execute's single-append window, so
	// compaction's write side still observes the full invariant.
	sh := s.lockShardFor(tasks[0].clientID)
	defer sh.gate.RUnlock()
	if sh.batch == nil {
		return nil, false
	}
	refuse := func(err error) {
		s.mu.Lock()
		if err != nil {
			s.poisonJournalLocked(err)
		}
		for i := range tasks {
			delete(tasks[i].sess.executing, tasks[i].req.Seq)
		}
		s.stats.JournalRefused += int64(len(tasks))
		s.mu.Unlock()
	}
	if s.JournalError() != nil {
		refuse(nil)
		return nil, true
	}
	staged = make([]stagedExec, 0, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		rep := runHandler(t.clientID, t.handler, t.req)
		enc := wire.Marshal(rep)
		jid, err := sh.batch.AppendNoSync(encodeExecRecordEnc(t.clientID, enc))
		if err != nil {
			refuse(err)
			return nil, true
		}
		staged = append(staged, stagedExec{task: *t, rep: rep, enc: enc, jid: jid})
	}
	if err := sh.batch.Commit(); err != nil {
		refuse(err)
		return nil, true
	}
	s.mu.Lock()
	for i := range staged {
		st := &staged[i]
		sess := st.task.sess
		delete(sess.executing, st.task.req.Seq)
		sess.replies[st.task.req.Seq] = st.rep
		sess.replyBytes += replyApproxSize(st.rep)
		if st.task.req.Seq > sess.maxExec {
			sess.maxExec = st.task.req.Seq
		}
		s.stats.Executed++
		s.stats.ReplyCacheEvictions += s.replyCache.put(st.task.clientID, st.task.req.Seq, st.enc)
		sh.ids = append(sh.ids, st.jid)
		s.stats.JournalRecords++
	}
	compact := s.shouldCompactLocked(sh)
	hook := s.onExecuted
	s.mu.Unlock()
	if compact {
		go s.compactJournal(sh.idx)
	}
	if hook != nil {
		for i := range staged {
			hook(staged[i].task.clientID, staged[i].task.req, staged[i].rep, staged[i].enc)
		}
	}
	return staged, true
}

// SetOnExecuted installs the execution observer (see Server.onExecuted).
// Install it before the server sees traffic; pass nil to remove it.
func (s *Server) SetOnExecuted(fn func(clientID string, req Request, rep *Reply, enc []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onExecuted = fn
}

// InstallReply installs a reply executed by a replica peer into clientID's
// session cache, so a client that fails over here has its redelivered
// requests answered from cache instead of re-executed. Stale installs —
// already acked, below the session's LowSeq, already cached, or currently
// executing locally — are ignored. Installed replies are journaled
// (apply-then-log) with the same exec record the local path writes, so
// recovery rebuilds them too. It reports whether the reply was installed.
func (s *Server) InstallReply(clientID string, rep *Reply) bool {
	if rep == nil {
		return false
	}
	s.mu.Lock()
	sess := s.sessionLocked(clientID)
	if sess.acked[rep.Seq] || rep.Seq < sess.lowSeq || sess.executing[rep.Seq] {
		s.mu.Unlock()
		return false
	}
	if _, ok := sess.replies[rep.Seq]; ok {
		s.mu.Unlock()
		return false
	}
	cp := *rep
	enc := wire.Marshal(&cp)
	sess.replies[rep.Seq] = &cp
	sess.replyBytes += replyApproxSize(&cp)
	if rep.Seq > sess.maxExec {
		sess.maxExec = rep.Seq
	}
	s.stats.ReplicatedReplies++
	s.stats.ReplyCacheEvictions += s.replyCache.put(clientID, rep.Seq, enc)
	s.mu.Unlock()
	s.journalSessionRecord(clientID, func() []byte { return encodeExecRecordEnc(clientID, enc) })
	return true
}

func (s *Server) onAck(from Sender, payload []byte) {
	var ack Ack
	if err := wire.Unmarshal(payload, &ack); err != nil {
		return
	}
	s.mu.Lock()
	cn := s.conns[from]
	if cn == nil || !cn.authed {
		s.mu.Unlock()
		return
	}
	clientID := cn.clientID
	sess := s.sessionLocked(clientID)
	for _, seq := range ack.Seqs {
		if rep, ok := sess.replies[seq]; ok {
			sess.replyBytes -= replyApproxSize(rep)
			delete(sess.replies, seq)
		}
		s.replyCache.delete(clientID, seq)
		sess.acked[seq] = true
		s.stats.AcksReceived++
	}
	s.mu.Unlock()
	// Journal the acknowledgment so recovery drops these reply payloads
	// too. Apply-then-log, like prune records: losing an ack record means a
	// fatter recovered cache, never a correctness violation (the client
	// already consumed the replies and will not redeliver).
	s.journalSessionRecord(clientID, func() []byte { return encodeAckRecord(clientID, ack.Seqs) })
}

// SendCallback pushes a notification to a client's current transport. It
// reports false when the client has no live connection (the notification
// is dropped; callbacks are an optimization, not a correctness mechanism —
// disconnected clients revalidate on import).
func (s *Server) SendCallback(clientID, topic string, payload []byte) bool {
	s.mu.Lock()
	sess := s.sessions[clientID]
	var snd Sender
	if sess != nil {
		snd = sess.sender
	}
	s.mu.Unlock()
	if snd == nil {
		return false
	}
	cb := &Callback{Topic: topic, Payload: payload}
	if snd.SendFrame(wire.Frame{Type: wire.FrameCallback, Payload: wire.Marshal(cb)}) {
		s.mu.Lock()
		s.stats.CallbacksSent++
		s.mu.Unlock()
		return true
	}
	return false
}

// BroadcastCallback sends a notification to every connected client except
// the named one (used to propagate object invalidations to other caches).
func (s *Server) BroadcastCallback(exceptClientID, topic string, payload []byte) int {
	s.mu.Lock()
	var targets []Sender
	for id, sess := range s.sessions {
		if id != exceptClientID && sess.sender != nil {
			targets = append(targets, sess.sender)
		}
	}
	s.mu.Unlock()
	cb := &Callback{Topic: topic, Payload: payload}
	frame := wire.Frame{Type: wire.FrameCallback, Payload: wire.Marshal(cb)}
	n := 0
	for _, snd := range targets {
		if snd.SendFrame(frame) {
			n++
		}
	}
	s.mu.Lock()
	s.stats.CallbacksSent += int64(n)
	s.mu.Unlock()
	return n
}

// Quiesce blocks until every request dispatched to the worker pool has
// executed and its reply has been handed to a transport. Inline servers
// return immediately. Connectionless transports (mail) use it to harvest a
// poll cycle's replies; tests use it to make pooled execution observable.
func (s *Server) Quiesce() {
	if s.pool != nil {
		s.pool.quiesce()
	}
}

// Close stops the worker pool, discarding requests not yet executing (their
// clients redeliver to the next server incarnation; at-most-once state is
// per-session and unaffected), and waits out any background journal
// compaction so the caller may close the journal log afterwards. Inline
// servers have nothing to stop. Close is idempotent.
func (s *Server) Close() error {
	if s.pool != nil {
		s.pool.close()
	}
	s.compactWG.Wait()
	return nil
}

// Stats returns a snapshot of the engine counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SessionInfo describes one client session for inspection tools.
type SessionInfo struct {
	ClientID      string
	CachedReplies int
	MaxExecuted   uint64
	// AckedPending counts ack records awaiting LowSeq pruning.
	AckedPending int
	// LowSeq is the highest floor a Hello has advertised (or recovery
	// replayed): all idempotency state below it has been pruned.
	LowSeq    uint64
	Connected bool
}

// SessionCount reports how many client sessions the server holds (the
// quantity ServerConfig.MaxSessions bounds).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Sessions lists the server's client sessions.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{
			ClientID:      sess.clientID,
			CachedReplies: len(sess.replies),
			MaxExecuted:   sess.maxExec,
			AckedPending:  len(sess.acked),
			LowSeq:        sess.lowSeq,
			Connected:     sess.sender != nil,
		})
	}
	return out
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("qrpc.Server(%s)", s.cfg.ServerID)
}
