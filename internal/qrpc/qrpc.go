// Package qrpc implements Queued Remote Procedure Call, one of the two
// mechanisms at the heart of the Rover toolkit.
//
// QRPC "permits applications to continue to make non-blocking remote
// procedure call requests even when a host is disconnected, with requests
// and responses being exchanged upon network reconnection." Concretely:
//
//   - An application enqueues a request; the client engine assigns it a
//     sequence number, writes it to the stable operation log (the flush is
//     on the critical path, as in the paper), and returns a Promise.
//   - When a transport is connected, the engine drains the queue in
//     priority order. Disconnection at any point is harmless: unreplied
//     requests are redelivered on the next connection.
//   - The server engine executes each request at most once, caching
//     replies until the client acknowledges them, so redelivered requests
//     return the original reply instead of re-executing.
//   - Replies complete promises and fire application callbacks; the log
//     entry is removed before the acknowledgement is sent, so a crash at
//     any instant loses nothing.
//
// The engines are deliberately "sans-io" state machines: they never touch
// sockets, clocks, or goroutines. Entry points take explicit timestamps
// and a Sender; adapters in internal/transport pump them from real TCP
// connections, from the discrete-event network simulator, and from the
// store-and-forward mail transport. One code path serves experiments and
// deployment alike.
package qrpc

import (
	"errors"

	"rover/internal/wire"
)

// Priority orders queued requests; higher drains first. The paper: "the
// application specifies a priority that is used by the network scheduler
// to reorder QRPCs."
type Priority uint8

// Standard priorities. Applications may use any value; these name the
// conventional levels (prefetches ride Low, user-blocking work High).
const (
	PriorityLow        Priority = 2
	PriorityNormal     Priority = 5
	PriorityHigh       Priority = 8
	PriorityForeground Priority = 10
)

// Errors surfaced through promises and engine methods.
var (
	ErrAuthRejected = errors.New("qrpc: server rejected authentication")
	ErrEngineClosed = errors.New("qrpc: engine closed")
	ErrCancelled    = errors.New("qrpc: request cancelled")
)

// Sender transmits frames toward the peer. Send is best-effort: a false
// return means the frame was not accepted (link down) and the engine will
// retry after the next connect.
type Sender interface {
	SendFrame(f wire.Frame) bool
}

// Status codes carried in replies.
type Status byte

// Reply status values.
const (
	StatusOK        Status = 0 // handler succeeded; Result holds the value
	StatusAppError  Status = 1 // handler returned an application error
	StatusNoService Status = 2 // no handler registered for the service
)

// RemoteError is the promise error for a reply with non-OK status.
type RemoteError struct {
	Status  Status
	Message string
}

func (e *RemoteError) Error() string {
	switch e.Status {
	case StatusNoService:
		return "qrpc: no such service: " + e.Message
	default:
		return "qrpc: remote error: " + e.Message
	}
}

// ClientStats counts client-engine activity for the benchmark harness.
type ClientStats struct {
	Enqueued     int64
	Sent         int64 // request frames handed to a transport
	Resent       int64 // request frames sent more than once
	Replies      int64
	Duplicates   int64 // replies for already-completed requests
	AcksSent     int64
	BatchesSent  int64 // FrameBatch frames sent (coalesced pump cycles)
	ZBatchesSent int64 // compressed (FrameBatchZ) frames sent
	Connects     int64
	Disconnects  int64

	// BusyReceived counts FrameBusy refusals from servers past their
	// session high-water mark (see ServerConfig.MaxSessions). The engine
	// surfaces each via ClientConfig.OnBusy so the owner can rotate to a
	// backup server; queued requests stay queued and redeliver later.
	BusyReceived int64
}

// ServerStats counts server-engine activity.
type ServerStats struct {
	Requests      int64
	Executed      int64
	ReplaysServed int64 // duplicate requests answered from the reply cache
	Dropped       int64 // stale duplicates dropped
	AcksReceived  int64
	AuthFailures  int64
	CallbacksSent int64
	BatchesSent   int64 // FrameBatch frames sent (coalesced reply chunks)
	ZBatchesSent  int64 // compressed (FrameBatchZ) frames sent

	// ReplicatedReplies counts replies installed by a replica peer via
	// InstallReply (reply-cache continuity across failover).
	ReplicatedReplies int64

	// Session-journal counters (zero when the server has no journal).
	JournalRecords      int64 // exec/ack/prune records appended
	JournalCompactions  int64 // snapshot+truncate cycles completed
	JournalRefused      int64 // requests refused because the journal is poisoned
	RecoveredSessions   int64 // sessions rebuilt from the journal at construction
	RecoveredReplies    int64 // cached replies rebuilt from the journal at construction
	JournalReshards     int64 // sessions rewritten into their home shard at recovery
	JournalShardGrowths int64 // online shard-count increases (GrowJournalShards)

	// Admission-control and budget counters (see ServerConfig.MaxSessions
	// and SessionBudgetBytes).
	SessionsRefused int64 // Hellos from NEW clients refused with FrameBusy
	BudgetRefused   int64 // new requests dropped: session over its reply budget

	// Encoded-reply cache counters (see ServerConfig.ReplyCacheBytes).
	// Replays and repl exec-streaming served from the cache skip a
	// Reply re-marshal.
	ReplyCacheHits      int64
	ReplyCacheMisses    int64
	ReplyCacheEvictions int64
}
