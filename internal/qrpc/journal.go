package qrpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"rover/internal/stable"
	"rover/internal/wire"
)

// Server session journal.
//
// The client side of QRPC survives crashes because every request lives in a
// stable operation log until its reply is consumed. The server side's
// exactly-once machinery — the per-session reply cache and acked table —
// was historically in-memory only: kill the server and every redelivered
// request re-executed. ServerConfig.Journal closes that hole with a
// write-ahead journal of session state:
//
//   - exec records ('E') persist an executed request's reply BEFORE the
//     reply is released to any transport, so a reply the client may have
//     observed is always recoverable;
//   - ack records ('K') persist which replies the client acknowledged, so
//     recovered state does not retain reply payloads forever;
//   - prune records ('P') persist the LowSeq floor a Hello advertised, so
//     recovery can discard idempotency state the client no longer needs;
//   - snapshot records ('S') are written by compaction: one record holding
//     the complete recovery state of every session the shard owns,
//     superseding (and allowing removal of) everything journaled in that
//     shard before it;
//   - migrate records ('M') are written only by recovery-time resharding:
//     the same session-list payload as a snapshot, but replayed as an
//     upsert of the listed sessions rather than a reset (see below).
//
// # Sharding
//
// The journal is a set of N independent stable logs ("shards",
// ServerConfig.Journals); a session's records always go to the shard its
// clientID hashes to (FNV-1a mod N), so the per-session replay order the
// recovery invariants depend on is preserved within one log. What sharding
// buys is parallel group commit: each shard's stable.FileLog elects its own
// fsync leader, so with N shards up to N fsyncs overlap instead of every
// worker in the server convoying behind a single leader — the dominant cost
// at high session counts (see BENCH_pr7). N=1 (or the legacy singular
// ServerConfig.Journal) degenerates to exactly the old behavior.
//
// Replay applies each shard's records in append order into a per-shard
// bucket; a snapshot record resets that bucket to its contents and later
// records apply on top. That reset is sound because compaction captures the
// snapshot while holding the shard's gate exclusively: no append to that
// shard is in flight, so every live record's effect is already inside the
// captured state. The buckets are then merged into one session map —
// idempotently, so the same session recovered from two shards (possible
// only after the shard count changed between incarnations) folds together:
// lowSeq and maxExec take the max, acked seqs union, cached replies union
// minus anything acked or below the merged floor.
//
// # Resharding
//
// When recovery finds a session whose records live outside its home shard
// (the operator changed the shard count), it reshards once, before the
// server is reachable: first a migrate record with the merged state of
// every misplaced session is appended to that session's home shard — the
// durable copy in the right place — and only then is each shard that held a
// stale copy compacted (snapshot of its owned sessions, remove the old
// records). The order is what makes a crash at any point safe: until the
// home-shard migrate record is durable, no old copy is superseded or
// removed; after it, a stale bucket resetting to an owned-only snapshot
// cannot lose the session. Decreasing the shard count is NOT supported at
// this layer — records in dropped logs would simply never be opened — and
// the rover facade refuses a configuration whose on-disk shard files exceed
// the configured count.
//
// Journal appends ride the stable log's group commit (stable.FileLog's
// leader-fsync waiter protocol), so within a shard N concurrent executes
// share ~one fsync instead of paying N — the durability write is amortized
// per shard and parallel across shards.

// journalShard is one bucket of the sharded session journal.
type journalShard struct {
	idx   int
	log   stable.Log
	batch stable.BatchLog // non-nil when log supports staged appends (pipelined group commit)

	// gate orders this shard's appends against its compaction snapshots:
	// appenders hold the read side across their append AND the Server.mu
	// bookkeeping that tracks the new record's id, so the write side
	// observes "every live record's effect is in sessions and its id is in
	// ids" — the invariant compaction relies on. Lock order: gate before
	// Server.mu; gates of different shards are never held together, with
	// one exception: GrowJournalShards holds every existing gate's write
	// side (acquired in shard-index order) while it re-homes sessions.
	gate       sync.RWMutex
	ids        []uint64 // under Server.mu: live record ids compaction may remove
	compacting bool     // under Server.mu: one compaction per shard at a time
}

// Journal record kinds (first byte of each record).
const (
	jrecExec     = byte('E')
	jrecAck      = byte('K')
	jrecPrune    = byte('P')
	jrecSnapshot = byte('S')
	jrecMigrate  = byte('M')
)

// defaultJournalCompactEvery is the per-shard live-record count that
// triggers a background snapshot+truncate when
// ServerConfig.JournalCompactEvery is 0.
const defaultJournalCompactEvery = 1024

// hasJournal reports whether the server journals session state. journaled
// is set once at construction (growth adds shards but can never take a
// journal-less server to a journaled one), so this needs no lock.
func (s *Server) hasJournal() bool { return s.journaled }

// journalShardIndex maps a clientID to its home shard under an n-shard
// journal (FNV-1a mod n). Every record for a session is appended to its
// home shard, so per-session replay order is total within one log.
func journalShardIndex(clientID string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(clientID); i++ {
		h ^= uint32(clientID[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardIndexFor is journalShardIndex under the current shard count. It
// takes s.mu (the shard slice may be swapped by online growth); callers
// already holding mu use journalShardIndex(id, len(s.shards)) directly.
func (s *Server) shardIndexFor(clientID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return journalShardIndex(clientID, len(s.shards))
}

func (s *Server) shardFor(clientID string) *journalShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[journalShardIndex(clientID, len(s.shards))]
}

// lockShardFor resolves clientID's home shard and returns it with its gate
// read-held, revalidating after acquisition: an online growth may re-home
// the session between resolution and lock, and an append through the stale
// gate would land in a shard whose growth-triggered compaction has already
// captured (and will remove) the session's records there.
func (s *Server) lockShardFor(clientID string) *journalShard {
	for {
		sh := s.shardFor(clientID)
		sh.gate.RLock()
		if s.shardFor(clientID) == sh {
			return sh
		}
		sh.gate.RUnlock()
	}
}

// ownedSessionsLocked returns the sessions whose home is shard idx — the
// set a compaction snapshot of that shard must capture. Callers hold s.mu
// (or run single-threaded at construction).
func (s *Server) ownedSessionsLocked(idx int) map[string]*session {
	if len(s.shards) <= 1 {
		return s.sessions
	}
	owned := make(map[string]*session)
	for id, sess := range s.sessions {
		if journalShardIndex(id, len(s.shards)) == idx {
			owned[id] = sess
		}
	}
	return owned
}

// encodeExecRecordEnc builds an exec record from a reply's existing
// encoding. wire.Marshal(rep) produces exactly the bytes
// rep.MarshalWire(&b) would append, so splicing the cached encoding in
// raw keeps the record format identical while skipping the re-marshal.
func encodeExecRecordEnc(clientID string, encReply []byte) []byte {
	var b wire.Buffer
	b.PutByte(jrecExec)
	b.PutString(clientID)
	b.PutRaw(encReply)
	return b.Bytes()
}

func encodeExecRecord(clientID string, rep *Reply) []byte {
	var b wire.Buffer
	b.PutByte(jrecExec)
	b.PutString(clientID)
	rep.MarshalWire(&b)
	return b.Bytes()
}

func encodeAckRecord(clientID string, seqs []uint64) []byte {
	var b wire.Buffer
	b.PutByte(jrecAck)
	b.PutString(clientID)
	b.PutUvarintSlice(seqs)
	return b.Bytes()
}

func encodePruneRecord(clientID string, lowSeq uint64) []byte {
	var b wire.Buffer
	b.PutByte(jrecPrune)
	b.PutString(clientID)
	b.PutUvarint(lowSeq)
	return b.Bytes()
}

// encodeSnapshotRecord serializes the complete recovery state of the given
// sessions (a shard's owned set; the whole map on an unsharded server).
// Callers hold s.mu (and, for compaction, the shard gate's write lock).
func encodeSnapshotRecord(sessions map[string]*session) []byte {
	var b wire.Buffer
	b.PutByte(jrecSnapshot)
	putSessionList(&b, sessions)
	return b.Bytes()
}

// encodeMigrateRecord carries the same session-list payload as a snapshot
// but replays as an upsert: recovery-time resharding uses it to place a
// misplaced session's merged state into its home shard without resetting
// the sessions already journaled there.
func encodeMigrateRecord(sessions map[string]*session) []byte {
	var b wire.Buffer
	b.PutByte(jrecMigrate)
	putSessionList(&b, sessions)
	return b.Bytes()
}

// putSessionList appends the session-list payload shared by snapshot and
// migrate records. Iteration is sorted so identical states produce
// identical bytes.
func putSessionList(b *wire.Buffer, sessions map[string]*session) {
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b.PutUvarint(uint64(len(ids)))
	for _, id := range ids {
		sess := sessions[id]
		b.PutString(sess.clientID)
		b.PutUvarint(sess.lowSeq)
		b.PutUvarint(sess.maxExec)
		seqs := make([]uint64, 0, len(sess.replies))
		for seq := range sess.replies {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		b.PutUvarint(uint64(len(seqs)))
		for _, seq := range seqs {
			sess.replies[seq].MarshalWire(b)
		}
		acked := make([]uint64, 0, len(sess.acked))
		for seq := range sess.acked {
			acked = append(acked, seq)
		}
		sort.Slice(acked, func(i, j int) bool { return acked[i] < acked[j] })
		b.PutUvarintSlice(acked)
	}
}

// readSessionList decodes a snapshot/migrate payload.
func readSessionList(r *wire.Reader) (map[string]*session, error) {
	n := r.Len()
	sessions := make(map[string]*session, n)
	for i := 0; i < n; i++ {
		clientID := r.String()
		sess := &session{
			clientID:  clientID,
			replies:   make(map[uint64]*Reply),
			executing: make(map[uint64]bool),
			acked:     make(map[uint64]bool),
		}
		sess.lowSeq = r.Uvarint()
		sess.maxExec = r.Uvarint()
		rn := r.Len()
		for j := 0; j < rn; j++ {
			rep := &Reply{}
			if err := rep.UnmarshalWire(r); err != nil {
				return nil, fmt.Errorf("qrpc: corrupt snapshot reply: %w", err)
			}
			sess.replies[rep.Seq] = rep
		}
		for _, seq := range r.UvarintSlice() {
			sess.acked[seq] = true
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("qrpc: corrupt snapshot record: %w", r.Err())
		}
		sessions[clientID] = sess
	}
	return sessions, nil
}

// recoverJournal rebuilds session state from the journal shards at
// construction. It runs before the server is reachable, so no locking is
// needed. Any decode failure aborts recovery — executing against a
// half-recovered reply cache could re-run requests whose replies were
// already released, so the caller poisons the server instead. (A torn tail
// in one shard never reaches here: stable.FileLog truncates it at open, so
// one shard's crash-torn write costs at most its own last record and never
// the sessions journaled in other shards.)
func (s *Server) recoverJournal() error {
	buckets := make([]map[string]*session, len(s.shards))
	for i, sh := range s.shards {
		bucket := make(map[string]*session)
		err := sh.log.Replay(func(id uint64, rec []byte) error {
			var aerr error
			bucket, aerr = applyJournalRecord(bucket, rec)
			if aerr != nil {
				return fmt.Errorf("shard %d record %d: %w", sh.idx, id, aerr)
			}
			sh.ids = append(sh.ids, id)
			return nil
		})
		if err != nil {
			return err
		}
		buckets[i] = bucket
	}

	// Merge the buckets. A session normally lives entirely in its home
	// shard; finding it elsewhere (or in several buckets) means the shard
	// count changed between incarnations, so fold the copies together and
	// remember it for resharding.
	misplaced := make(map[string]bool)
	for i, bucket := range buckets {
		for id, bs := range bucket {
			if i != s.shardIndexFor(id) {
				misplaced[id] = true
			}
			if cur, ok := s.sessions[id]; ok {
				// Present in more than one bucket: at most one copy is home.
				misplaced[id] = true
				mergeSessionState(cur, bs)
			} else {
				s.sessions[id] = bs
			}
		}
	}

	// Idempotency state below a session's recovered LowSeq is dead weight
	// (replay order can leave stale entries when prune records landed before
	// late ack records), and after a cross-bucket merge a reply acked in one
	// bucket may still be cached from another; drop both once, here, then
	// settle the per-session reply budget.
	recoveredReplies := 0
	for _, sess := range s.sessions {
		for seq := range sess.replies {
			if seq < sess.lowSeq || sess.acked[seq] {
				delete(sess.replies, seq)
			}
		}
		for seq := range sess.acked {
			if seq < sess.lowSeq {
				delete(sess.acked, seq)
			}
		}
		sess.replyBytes = 0
		for _, rep := range sess.replies {
			sess.replyBytes += replyApproxSize(rep)
		}
		recoveredReplies += len(sess.replies)
	}
	s.stats.RecoveredSessions = int64(len(s.sessions))
	s.stats.RecoveredReplies = int64(recoveredReplies)

	if len(misplaced) == 0 {
		return nil
	}
	return s.reshardJournal(misplaced, buckets)
}

// mergeSessionState folds one bucket's copy of a session into the merged
// state. The fold is monotone — floors and high-water marks take the max,
// acked seqs union, replies union — so merging the same copies in any order
// yields the same state; the caller's post-pass then drops replies the
// merged acked set or floor supersedes.
func mergeSessionState(dst, src *session) {
	if src.lowSeq > dst.lowSeq {
		dst.lowSeq = src.lowSeq
	}
	if src.maxExec > dst.maxExec {
		dst.maxExec = src.maxExec
	}
	for seq := range src.acked {
		dst.acked[seq] = true
	}
	for seq, rep := range src.replies {
		if _, ok := dst.replies[seq]; !ok {
			dst.replies[seq] = rep
		}
	}
}

// reshardJournal rewrites sessions recovered outside their home shard so
// every session's durable state lives where shardFor sends its future
// records. Phase 1 appends a migrate record with each misplaced session's
// merged state to its home shard; only once those are durable does phase 2
// compact the shards holding stale copies (owned-only snapshot, then remove
// superseded records). A crash between the phases re-runs resharding at the
// next recovery from the still-present copies; a crash inside phase 2
// cannot lose state because the home-shard migrate record already holds it.
func (s *Server) reshardJournal(misplaced map[string]bool, buckets []map[string]*session) error {
	byHome := make(map[int]map[string]*session)
	for id := range misplaced {
		home := s.shardIndexFor(id)
		if byHome[home] == nil {
			byHome[home] = make(map[string]*session)
		}
		byHome[home][id] = s.sessions[id]
	}
	for home := 0; home < len(s.shards); home++ {
		group := byHome[home]
		if len(group) == 0 {
			continue
		}
		sh := s.shards[home]
		id, err := sh.log.Append(encodeMigrateRecord(group))
		if err != nil {
			return fmt.Errorf("qrpc: reshard: migrate append to shard %d: %w", home, err)
		}
		sh.ids = append(sh.ids, id)
	}
	for i, bucket := range buckets {
		stale := false
		for id := range bucket {
			if misplaced[id] {
				stale = true
				break
			}
		}
		if !stale {
			continue
		}
		if err := s.compactShardAtRecovery(i); err != nil {
			return fmt.Errorf("qrpc: reshard: compact shard %d: %w", i, err)
		}
	}
	s.stats.JournalReshards = int64(len(misplaced))
	return nil
}

// compactShardAtRecovery compacts one shard during construction: snapshot
// its owned sessions, then remove everything the snapshot supersedes. The
// server is not reachable yet, so no gate or mu is needed.
func (s *Server) compactShardAtRecovery(idx int) error {
	sh := s.shards[idx]
	sid, err := sh.log.Append(encodeSnapshotRecord(s.ownedSessionsLocked(idx)))
	if err != nil {
		return err
	}
	prev := sh.ids
	sh.ids = []uint64{sid}
	for _, old := range prev {
		if rerr := sh.log.Remove(old); rerr != nil && !errors.Is(rerr, stable.ErrNotFound) {
			sh.ids = append(sh.ids, old)
		}
	}
	s.stats.JournalCompactions++
	return nil
}

// applyJournalRecord applies one journal record to a recovery bucket,
// returning the (possibly replaced, for snapshots) bucket map.
func applyJournalRecord(sessions map[string]*session, rec []byte) (map[string]*session, error) {
	r := wire.NewReader(rec)
	kind := r.Byte()
	switch kind {
	case jrecExec:
		clientID := r.String()
		rep := &Reply{}
		if err := rep.UnmarshalWire(r); err != nil {
			return nil, fmt.Errorf("qrpc: corrupt exec record: %w", err)
		}
		if err := journalRecordDone(r); err != nil {
			return nil, err
		}
		sess := bucketSession(sessions, clientID)
		if rep.Seq >= sess.lowSeq && !sess.acked[rep.Seq] {
			sess.replies[rep.Seq] = rep
		}
		if rep.Seq > sess.maxExec {
			sess.maxExec = rep.Seq
		}
	case jrecAck:
		clientID := r.String()
		seqs := r.UvarintSlice()
		if err := journalRecordDone(r); err != nil {
			return nil, err
		}
		sess := bucketSession(sessions, clientID)
		for _, seq := range seqs {
			delete(sess.replies, seq)
			sess.acked[seq] = true
		}
	case jrecPrune:
		clientID := r.String()
		lowSeq := r.Uvarint()
		if err := journalRecordDone(r); err != nil {
			return nil, err
		}
		sess := bucketSession(sessions, clientID)
		if lowSeq > sess.lowSeq {
			sess.lowSeq = lowSeq
			for seq := range sess.replies {
				if seq < lowSeq {
					delete(sess.replies, seq)
				}
			}
			for seq := range sess.acked {
				if seq < lowSeq {
					delete(sess.acked, seq)
				}
			}
		}
	case jrecSnapshot:
		snap, err := readSessionList(r)
		if err != nil {
			return nil, err
		}
		if err := journalRecordDone(r); err != nil {
			return nil, err
		}
		// A snapshot captures this shard's complete state under the shard
		// gate, so it supersedes everything applied before it.
		return snap, nil
	case jrecMigrate:
		moved, err := readSessionList(r)
		if err != nil {
			return nil, err
		}
		if err := journalRecordDone(r); err != nil {
			return nil, err
		}
		// A migrate record carries a merged copy that already folded in
		// everything journaled for these sessions before it: upsert.
		for id, sess := range moved {
			sessions[id] = sess
		}
	default:
		return nil, fmt.Errorf("qrpc: unknown journal record kind %#x", kind)
	}
	return sessions, nil
}

// bucketSession finds or creates a session in a recovery bucket.
func bucketSession(sessions map[string]*session, clientID string) *session {
	sess := sessions[clientID]
	if sess == nil {
		sess = &session{
			clientID:  clientID,
			replies:   make(map[uint64]*Reply),
			executing: make(map[uint64]bool),
			acked:     make(map[uint64]bool),
		}
		sessions[clientID] = sess
	}
	return sess
}

func journalRecordDone(r *wire.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("qrpc: corrupt journal record: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("qrpc: trailing bytes in journal record")
	}
	return nil
}

// poisonJournalLocked records the first journal failure. Once set, the
// server refuses to execute further requests (see onRequest/execute):
// releasing replies whose durability cannot be guaranteed would silently
// reintroduce the double-execution window the journal exists to close. The
// poison is server-wide even though shards fail independently — a server
// that kept executing for lucky hash buckets while refusing others would be
// far harder to reason about (and to operate) than one that fails whole.
func (s *Server) poisonJournalLocked(err error) {
	if s.journalErr == nil {
		s.journalErr = fmt.Errorf("qrpc: session journal: %w", err)
	}
}

// JournalError reports why the server's session journal is out of service:
// a recovery failure at construction, or the first append failure on any
// shard (for stable.FileLog, typically a *stable.PoisonedError after a
// failed fsync). While non-nil, the server answers redelivered requests
// from the recovered reply cache but refuses to execute new work
// (ServerStats.JournalRefused counts the refusals). Nil when healthy or
// when no journal is configured.
func (s *Server) JournalError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalErr
}

func (s *Server) journalCompactThreshold() int {
	if s.cfg.JournalCompactEvery > 0 {
		return s.cfg.JournalCompactEvery
	}
	return defaultJournalCompactEvery
}

// shouldCompactLocked decides (and claims) a background compaction run for
// one shard. The threshold applies per shard: each shard's journal is
// bounded by the live state of the sessions it owns.
func (s *Server) shouldCompactLocked(sh *journalShard) bool {
	if sh.compacting || s.journalErr != nil || len(sh.ids) < s.journalCompactThreshold() {
		return false
	}
	sh.compacting = true
	s.compactWG.Add(1)
	return true
}

// compactJournal runs in the background once a shard's live journal grows
// past the compaction threshold: it snapshots the recovery state of every
// session the shard owns into one record, appends it, and removes the
// records it supersedes, so the shard stays bounded by live session state
// rather than by history.
//
// Holding the shard's gate exclusively across capture+append is what makes
// this correct: appends to this shard hold the read side across their own
// append+bookkeeping, so at capture time every live record's effect is in
// s.sessions and its id is in sh.ids — "snapshot, then remove exactly the
// tracked ids" cannot lose an in-flight record. Sessions owned by other
// shards keep appending concurrently; their records are in other logs and
// are not captured or removed here.
func (s *Server) compactJournal(idx int) {
	defer s.compactWG.Done()
	s.mu.Lock()
	sh := s.shards[idx]
	s.mu.Unlock()
	sh.gate.Lock()
	s.mu.Lock()
	if s.journalErr != nil {
		sh.compacting = false
		s.mu.Unlock()
		sh.gate.Unlock()
		return
	}
	snap := encodeSnapshotRecord(s.ownedSessionsLocked(idx))
	prev := sh.ids
	sh.ids = nil
	s.mu.Unlock()
	sid, err := sh.log.Append(snap)
	sh.gate.Unlock()
	if err != nil {
		s.mu.Lock()
		s.poisonJournalLocked(err)
		sh.ids = append(sh.ids, prev...)
		sh.compacting = false
		s.mu.Unlock()
		return
	}
	// Removes run outside the gate: they touch only superseded records. A
	// failed remove is not fatal — the record replays idempotently underneath
	// the snapshot — so it is kept for retry at the next compaction instead
	// of poisoning the journal.
	kept := prev[:0]
	for _, old := range prev {
		if rerr := sh.log.Remove(old); rerr != nil && !errors.Is(rerr, stable.ErrNotFound) {
			kept = append(kept, old)
		}
	}
	s.mu.Lock()
	sh.ids = append(sh.ids, sid)
	sh.ids = append(sh.ids, kept...)
	s.stats.JournalCompactions++
	sh.compacting = false
	s.mu.Unlock()
}

// JournalShardCount reports the current number of journal shards (0 when
// the server has no journal).
func (s *Server) JournalShardCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// GrowJournalShards extends the session journal to len(newLogs) additional
// shards while the server keeps executing — the online form of the recovery
// reshard, with the same crash-safety order. With every existing gate held
// write-side (quiescing appends), each session whose home moves under the
// new count is captured in a migrate record durably appended to its new
// home shard; only then is the grown shard set installed and each shard
// left holding moved-away records compacted in the background. A crash
// between the migrate appends and those compactions merely leaves duplicate
// copies, which the next recovery merges and re-reshards. Shrinking is not
// supported (see the package comment); a failed append to a NEW log aborts
// cleanly with the old configuration intact, while a failed append to an
// existing shard poisons the journal like any other append failure.
func (s *Server) GrowJournalShards(newLogs []stable.Log) error {
	if len(newLogs) == 0 {
		return nil
	}
	if !s.hasJournal() {
		return errors.New("qrpc: grow: no journal configured")
	}
	s.mu.Lock()
	if err := s.journalErr; err != nil {
		s.mu.Unlock()
		return err
	}
	if s.growing {
		s.mu.Unlock()
		return errors.New("qrpc: grow: growth already in progress")
	}
	s.growing = true
	old := s.shards
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.growing = false
		s.mu.Unlock()
	}()

	// Quiesce appends: every existing gate's write side, in shard-index
	// order (the one sanctioned multi-gate hold — see journalShard.gate).
	// In-flight compactions finish first; new appenders wait in
	// lockShardFor and re-resolve their home once the gates drop.
	for _, sh := range old {
		sh.gate.Lock()
	}
	release := func() {
		for i := len(old) - 1; i >= 0; i-- {
			old[i].gate.Unlock()
		}
	}

	newCount := len(old) + len(newLogs)
	grown := make([]*journalShard, 0, newCount)
	grown = append(grown, old...)
	for i, log := range newLogs {
		bl, _ := log.(stable.BatchLog)
		grown = append(grown, &journalShard{idx: len(old) + i, log: log, batch: bl})
	}

	// Find every session whose home moves under the new count; encode one
	// migrate record per destination shard.
	s.mu.Lock()
	if err := s.journalErr; err != nil {
		s.mu.Unlock()
		release()
		return err
	}
	byNewHome := make(map[int]map[string]*session)
	staleOld := make(map[int]bool)
	for id, sess := range s.sessions {
		oldHome := journalShardIndex(id, len(old))
		newHome := journalShardIndex(id, newCount)
		if newHome == oldHome {
			continue
		}
		if byNewHome[newHome] == nil {
			byNewHome[newHome] = make(map[string]*session)
		}
		byNewHome[newHome][id] = sess
		staleOld[oldHome] = true
	}
	migrates := make(map[int][]byte, len(byNewHome))
	for home, group := range byNewHome {
		migrates[home] = encodeMigrateRecord(group)
	}
	s.mu.Unlock()

	// Durable migrate appends. A destination may be an existing shard (the
	// modulus does not partition conservatively); its gate is held
	// exclusively here, so the direct append cannot race a compaction.
	appended := make(map[int]uint64, len(migrates))
	for home, rec := range migrates {
		id, err := grown[home].log.Append(rec)
		if err != nil {
			if home < len(old) {
				s.mu.Lock()
				s.poisonJournalLocked(err)
				s.mu.Unlock()
			}
			// Migrate records that did land are harmless upserts; recovery
			// re-merges and re-reshards them under whatever count comes next.
			release()
			return fmt.Errorf("qrpc: grow: migrate append: %w", err)
		}
		appended[home] = id
	}

	// Install the grown shard set and claim a compaction of every shard
	// left holding records for sessions that moved away.
	s.mu.Lock()
	for home, id := range appended {
		grown[home].ids = append(grown[home].ids, id)
		s.stats.JournalRecords++
	}
	s.shards = grown
	s.stats.JournalShardGrowths++
	var toCompact []int
	for idx := range staleOld {
		if sh := grown[idx]; !sh.compacting {
			sh.compacting = true
			s.compactWG.Add(1)
			toCompact = append(toCompact, idx)
		}
	}
	s.mu.Unlock()
	release()
	for _, idx := range toCompact {
		go s.compactJournal(idx)
	}
	return nil
}

// JournalShardDepths reports the live-record count of each journal shard
// (stats lines, tests). Empty when the server has no journal.
func (s *Server) JournalShardDepths() []int {
	if !s.hasJournal() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	depths := make([]int, len(s.shards))
	for i, sh := range s.shards {
		depths[i] = len(sh.ids)
	}
	return depths
}
