package qrpc

import (
	"errors"
	"fmt"
	"sort"

	"rover/internal/stable"
	"rover/internal/wire"
)

// Server session journal.
//
// The client side of QRPC survives crashes because every request lives in a
// stable operation log until its reply is consumed. The server side's
// exactly-once machinery — the per-session reply cache and acked table —
// was historically in-memory only: kill the server and every redelivered
// request re-executed. ServerConfig.Journal closes that hole with a
// write-ahead journal of session state:
//
//   - exec records ('E') persist an executed request's reply BEFORE the
//     reply is released to any transport, so a reply the client may have
//     observed is always recoverable;
//   - ack records ('K') persist which replies the client acknowledged, so
//     recovered state does not retain reply payloads forever;
//   - prune records ('P') persist the LowSeq floor a Hello advertised, so
//     recovery can discard idempotency state the client no longer needs;
//   - snapshot records ('S') are written by compaction: one record holding
//     every session's complete recovery state, superseding (and allowing
//     removal of) everything journaled before it.
//
// Replay applies records in append order; a snapshot record resets all
// session state to its contents and later records apply on top. That reset
// is sound because compaction captures the snapshot while holding the
// journal gate (Server.jgate) exclusively: no append is in flight, so every
// live record's effect is already inside the captured state.
//
// Journal appends ride the stable log's group commit (stable.FileLog's
// leader-fsync waiter protocol), so under the worker pool N concurrent
// executes share ~one fsync instead of paying N — the durability write is
// amortized, not a new sync per request.

// Journal record kinds (first byte of each record).
const (
	jrecExec     = byte('E')
	jrecAck      = byte('K')
	jrecPrune    = byte('P')
	jrecSnapshot = byte('S')
)

// defaultJournalCompactEvery is the live-record count that triggers a
// background snapshot+truncate when ServerConfig.JournalCompactEvery is 0.
const defaultJournalCompactEvery = 1024

func encodeExecRecord(clientID string, rep *Reply) []byte {
	var b wire.Buffer
	b.PutByte(jrecExec)
	b.PutString(clientID)
	rep.MarshalWire(&b)
	return b.Bytes()
}

func encodeAckRecord(clientID string, seqs []uint64) []byte {
	var b wire.Buffer
	b.PutByte(jrecAck)
	b.PutString(clientID)
	b.PutUvarintSlice(seqs)
	return b.Bytes()
}

func encodePruneRecord(clientID string, lowSeq uint64) []byte {
	var b wire.Buffer
	b.PutByte(jrecPrune)
	b.PutString(clientID)
	b.PutUvarint(lowSeq)
	return b.Bytes()
}

// encodeSnapshotRecord serializes every session's recovery state. Callers
// hold s.mu (and, for compaction, the jgate write lock). Iteration is
// sorted so identical states produce identical bytes.
func encodeSnapshotRecord(sessions map[string]*session) []byte {
	var b wire.Buffer
	b.PutByte(jrecSnapshot)
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b.PutUvarint(uint64(len(ids)))
	for _, id := range ids {
		sess := sessions[id]
		b.PutString(sess.clientID)
		b.PutUvarint(sess.lowSeq)
		b.PutUvarint(sess.maxExec)
		seqs := make([]uint64, 0, len(sess.replies))
		for seq := range sess.replies {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		b.PutUvarint(uint64(len(seqs)))
		for _, seq := range seqs {
			sess.replies[seq].MarshalWire(&b)
		}
		acked := make([]uint64, 0, len(sess.acked))
		for seq := range sess.acked {
			acked = append(acked, seq)
		}
		sort.Slice(acked, func(i, j int) bool { return acked[i] < acked[j] })
		b.PutUvarintSlice(acked)
	}
	return b.Bytes()
}

// recoverJournal rebuilds session state from the journal at construction.
// It runs before the server is reachable, so no locking is needed. Any
// decode failure aborts recovery — executing against a half-recovered
// reply cache could re-run requests whose replies were already released,
// so the caller poisons the server instead.
func (s *Server) recoverJournal() error {
	err := s.cfg.Journal.Replay(func(id uint64, rec []byte) error {
		if err := s.applyJournalRecord(rec); err != nil {
			return fmt.Errorf("record %d: %w", id, err)
		}
		s.journalIDs = append(s.journalIDs, id)
		return nil
	})
	if err != nil {
		return err
	}
	// Idempotency state below a session's recovered LowSeq is dead weight
	// (replay order can leave stale entries when prune records landed before
	// late ack records); drop it once, here.
	recoveredReplies := 0
	for _, sess := range s.sessions {
		for seq := range sess.replies {
			if seq < sess.lowSeq {
				delete(sess.replies, seq)
			}
		}
		for seq := range sess.acked {
			if seq < sess.lowSeq {
				delete(sess.acked, seq)
			}
		}
		recoveredReplies += len(sess.replies)
	}
	s.stats.RecoveredSessions = int64(len(s.sessions))
	s.stats.RecoveredReplies = int64(recoveredReplies)
	return nil
}

// applyJournalRecord applies one journal record during recovery.
func (s *Server) applyJournalRecord(rec []byte) error {
	r := wire.NewReader(rec)
	kind := r.Byte()
	switch kind {
	case jrecExec:
		clientID := r.String()
		rep := &Reply{}
		if err := rep.UnmarshalWire(r); err != nil {
			return fmt.Errorf("qrpc: corrupt exec record: %w", err)
		}
		if err := journalRecordDone(r); err != nil {
			return err
		}
		sess := s.sessionLocked(clientID)
		if rep.Seq >= sess.lowSeq && !sess.acked[rep.Seq] {
			sess.replies[rep.Seq] = rep
		}
		if rep.Seq > sess.maxExec {
			sess.maxExec = rep.Seq
		}
	case jrecAck:
		clientID := r.String()
		seqs := r.UvarintSlice()
		if err := journalRecordDone(r); err != nil {
			return err
		}
		sess := s.sessionLocked(clientID)
		for _, seq := range seqs {
			delete(sess.replies, seq)
			sess.acked[seq] = true
		}
	case jrecPrune:
		clientID := r.String()
		lowSeq := r.Uvarint()
		if err := journalRecordDone(r); err != nil {
			return err
		}
		sess := s.sessionLocked(clientID)
		if lowSeq > sess.lowSeq {
			sess.lowSeq = lowSeq
			for seq := range sess.replies {
				if seq < lowSeq {
					delete(sess.replies, seq)
				}
			}
			for seq := range sess.acked {
				if seq < lowSeq {
					delete(sess.acked, seq)
				}
			}
		}
	case jrecSnapshot:
		n := r.Len()
		sessions := make(map[string]*session, n)
		for i := 0; i < n; i++ {
			clientID := r.String()
			sess := &session{
				clientID:  clientID,
				replies:   make(map[uint64]*Reply),
				executing: make(map[uint64]bool),
				acked:     make(map[uint64]bool),
			}
			sess.lowSeq = r.Uvarint()
			sess.maxExec = r.Uvarint()
			rn := r.Len()
			for j := 0; j < rn; j++ {
				rep := &Reply{}
				if err := rep.UnmarshalWire(r); err != nil {
					return fmt.Errorf("qrpc: corrupt snapshot reply: %w", err)
				}
				sess.replies[rep.Seq] = rep
			}
			for _, seq := range r.UvarintSlice() {
				sess.acked[seq] = true
			}
			if r.Err() != nil {
				return fmt.Errorf("qrpc: corrupt snapshot record: %w", r.Err())
			}
			sessions[clientID] = sess
		}
		if err := journalRecordDone(r); err != nil {
			return err
		}
		// A snapshot captures complete state under the journal gate, so it
		// supersedes everything applied before it.
		s.sessions = sessions
	default:
		return fmt.Errorf("qrpc: unknown journal record kind %#x", kind)
	}
	return nil
}

func journalRecordDone(r *wire.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("qrpc: corrupt journal record: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("qrpc: trailing bytes in journal record")
	}
	return nil
}

// poisonJournalLocked records the first journal failure. Once set, the
// server refuses to execute further requests (see onRequest/execute):
// releasing replies whose durability cannot be guaranteed would silently
// reintroduce the double-execution window the journal exists to close.
func (s *Server) poisonJournalLocked(err error) {
	if s.journalErr == nil {
		s.journalErr = fmt.Errorf("qrpc: session journal: %w", err)
	}
}

// JournalError reports why the server's session journal is out of service:
// a recovery failure at construction, or the first append failure (for
// stable.FileLog, typically a *stable.PoisonedError after a failed fsync).
// While non-nil, the server answers redelivered requests from the recovered
// reply cache but refuses to execute new work (ServerStats.JournalRefused
// counts the refusals). Nil when healthy or when no journal is configured.
func (s *Server) JournalError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalErr
}

func (s *Server) journalCompactThreshold() int {
	if s.cfg.JournalCompactEvery > 0 {
		return s.cfg.JournalCompactEvery
	}
	return defaultJournalCompactEvery
}

// shouldCompactLocked decides (and claims) a background compaction run.
func (s *Server) shouldCompactLocked() bool {
	if s.compacting || s.journalErr != nil || len(s.journalIDs) < s.journalCompactThreshold() {
		return false
	}
	s.compacting = true
	s.compactWG.Add(1)
	return true
}

// compactJournal runs in the background once the live journal grows past
// the compaction threshold: it snapshots every session's recovery state
// into one record, appends it, and removes the records it supersedes, so
// the journal stays bounded by live session state rather than by history.
//
// Holding jgate exclusively across capture+append is what makes this
// correct: appends hold the read side across their own append+bookkeeping,
// so at capture time every live journal record's effect is in s.sessions
// and its id is in s.journalIDs — "snapshot, then remove exactly the
// tracked ids" cannot lose an in-flight record.
func (s *Server) compactJournal() {
	defer s.compactWG.Done()
	s.jgate.Lock()
	s.mu.Lock()
	if s.journalErr != nil {
		s.compacting = false
		s.mu.Unlock()
		s.jgate.Unlock()
		return
	}
	snap := encodeSnapshotRecord(s.sessions)
	prev := s.journalIDs
	s.journalIDs = nil
	s.mu.Unlock()
	sid, err := s.cfg.Journal.Append(snap)
	s.jgate.Unlock()
	if err != nil {
		s.mu.Lock()
		s.poisonJournalLocked(err)
		s.journalIDs = append(s.journalIDs, prev...)
		s.compacting = false
		s.mu.Unlock()
		return
	}
	// Removes run outside the gate: they touch only superseded records. A
	// failed remove is not fatal — the record replays idempotently underneath
	// the snapshot — so it is kept for retry at the next compaction instead
	// of poisoning the journal.
	kept := prev[:0]
	for _, old := range prev {
		if rerr := s.cfg.Journal.Remove(old); rerr != nil && !errors.Is(rerr, stable.ErrNotFound) {
			kept = append(kept, old)
		}
	}
	s.mu.Lock()
	s.journalIDs = append(s.journalIDs, sid)
	s.journalIDs = append(s.journalIDs, kept...)
	s.stats.JournalCompactions++
	s.compacting = false
	s.mu.Unlock()
}
