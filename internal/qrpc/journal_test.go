package qrpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rover/internal/faults"
	"rover/internal/stable"
	"rover/internal/wire"
)

// Frame builders for driving a server engine directly (no client engine),
// so tests control redelivery and crash points exactly.

func helloFrame(clientID string, lowSeq uint64) wire.Frame {
	return wire.Frame{Type: wire.FrameHello, Payload: wire.Marshal(&Hello{ClientID: clientID, LowSeq: lowSeq})}
}

func requestFrame(seq uint64, service string, args []byte) wire.Frame {
	return wire.Frame{Type: wire.FrameRequest, Payload: wire.Marshal(&Request{Seq: seq, Service: service, Args: args})}
}

func ackFrame(seqs ...uint64) wire.Frame {
	return wire.Frame{Type: wire.FrameAck, Payload: wire.Marshal(&Ack{Seqs: seqs})}
}

// drainReplies pops every queued frame off the sender, returning the
// decoded replies (Welcome/Pong/etc. frames are discarded; batches are
// unpacked).
func drainReplies(t *testing.T, snd *harnessSender) []*Reply {
	t.Helper()
	var reps []*Reply
	for _, f := range snd.queue {
		frames := []wire.Frame{f}
		if f.Type == wire.FrameBatch {
			subs, err := wire.UnbatchFrames(f.Payload)
			if err != nil {
				t.Fatalf("unbatch: %v", err)
			}
			frames = subs
		}
		for _, sf := range frames {
			if sf.Type != wire.FrameReply {
				continue
			}
			rep := &Reply{}
			if err := wire.Unmarshal(sf.Payload, rep); err != nil {
				t.Fatalf("reply unmarshal: %v", err)
			}
			reps = append(reps, rep)
		}
	}
	snd.queue = nil
	return reps
}

// TestJournalRecoveryExactlyOnce is the tentpole property: a server rebuilt
// from its session journal answers a redelivered request from the recovered
// reply cache instead of re-running the handler.
func TestJournalRecoveryExactlyOnce(t *testing.T) {
	journal := stable.NewMemLog(stable.Options{})
	up := true
	snd := &harnessSender{up: &up}

	execs := map[uint64]int{}
	handler := func(_ string, req Request) ([]byte, error) {
		execs[req.Seq]++
		return append([]byte("r:"), req.Args...), nil
	}

	srv1 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	srv1.Register("echo", handler)
	srv1.OnConnect(snd, 0)
	srv1.OnFrame(snd, helloFrame("c1", 1), 0)
	srv1.OnFrame(snd, requestFrame(1, "echo", []byte("a")), 0)
	srv1.OnFrame(snd, requestFrame(2, "echo", []byte("b")), 0)
	if reps := drainReplies(t, snd); len(reps) != 2 {
		t.Fatalf("got %d replies, want 2", len(reps))
	}
	if execs[1] != 1 || execs[2] != 1 {
		t.Fatalf("execs = %v", execs)
	}

	// Crash: srv1 is abandoned. The journal is all that survives.
	srv2 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	srv2.Register("echo", handler)
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	st := srv2.Stats()
	if st.RecoveredSessions != 1 || st.RecoveredReplies != 2 {
		t.Fatalf("recovered sessions=%d replies=%d, want 1/2", st.RecoveredSessions, st.RecoveredReplies)
	}

	srv2.OnConnect(snd, 0)
	srv2.OnFrame(snd, helloFrame("c1", 1), 0)
	snd.queue = nil
	srv2.OnFrame(snd, requestFrame(1, "echo", []byte("a")), 0)
	srv2.OnFrame(snd, requestFrame(2, "echo", []byte("b")), 0)
	reps := drainReplies(t, snd)
	if len(reps) != 2 {
		t.Fatalf("redelivery got %d replies, want 2", len(reps))
	}
	for _, rep := range reps {
		if rep.Status != StatusOK || string(rep.Result) != "r:"+map[uint64]string{1: "a", 2: "b"}[rep.Seq] {
			t.Errorf("recovered reply %d = %+v", rep.Seq, rep)
		}
	}
	if execs[1] != 1 || execs[2] != 1 {
		t.Fatalf("handler re-ran after restart: execs = %v", execs)
	}
	if got := srv2.Stats().ReplaysServed; got != 2 {
		t.Errorf("ReplaysServed = %d, want 2", got)
	}
}

// TestJournalAckAndPruneRecovery checks that ack and prune records are
// journaled and replayed: after a restart, an acked request is neither
// re-executed nor re-answered, and a pruned session's acked map stays
// pruned.
func TestJournalAckAndPruneRecovery(t *testing.T) {
	journal := stable.NewMemLog(stable.Options{})
	up := true
	snd := &harnessSender{up: &up}
	execs := 0

	srv1 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	srv1.Register("echo", func(string, Request) ([]byte, error) { execs++; return nil, nil })
	srv1.OnConnect(snd, 0)
	srv1.OnFrame(snd, helloFrame("c1", 1), 0)
	srv1.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	srv1.OnFrame(snd, ackFrame(1), 0)

	// Restart 1: the ack record must survive — the redelivered request is
	// dropped (client has the reply), not re-executed, not re-answered.
	srv2 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	srv2.Register("echo", func(string, Request) ([]byte, error) { execs++; return nil, nil })
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	srv2.OnConnect(snd, 0)
	srv2.OnFrame(snd, helloFrame("c1", 1), 0)
	snd.queue = nil
	srv2.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	if reps := drainReplies(t, snd); len(reps) != 0 {
		t.Fatalf("acked request re-answered after restart: %d replies", len(reps))
	}
	if execs != 1 {
		t.Fatalf("acked request re-executed: execs = %d", execs)
	}
	sess := srv2.Sessions()
	if len(sess) != 1 || sess[0].AckedPending != 1 || sess[0].CachedReplies != 0 {
		t.Fatalf("recovered session = %+v, want 1 acked, 0 cached", sess)
	}

	// A Hello advertising LowSeq=2 prunes the acked map and journals the
	// prune record.
	srv2.OnFrame(snd, helloFrame("c1", 2), 0)
	if sess := srv2.Sessions(); sess[0].AckedPending != 0 || sess[0].LowSeq != 2 {
		t.Fatalf("prune not applied: %+v", sess[0])
	}

	// Restart 2: recovery must replay the prune record.
	srv3 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	if err := srv3.JournalError(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	sess = srv3.Sessions()
	if len(sess) != 1 || sess[0].AckedPending != 0 || sess[0].LowSeq != 2 {
		t.Fatalf("prune record not replayed: %+v", sess)
	}
}

// TestJournalCompactionBoundsLog drives enough requests through a
// low-threshold journal to force several snapshot+truncate cycles, then
// verifies the journal stayed bounded and a rebuild from the compacted
// journal recovers the exact session state.
func TestJournalCompactionBoundsLog(t *testing.T) {
	journal := stable.NewMemLog(stable.Options{})
	up := true
	snd := &harnessSender{up: &up}
	const threshold = 8

	srv := NewServer(ServerConfig{ServerID: "srv", Journal: journal, JournalCompactEvery: threshold})
	srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
	srv.OnConnect(snd, 0)
	srv.OnFrame(snd, helloFrame("c1", 1), 0)
	const n = 100
	for seq := uint64(1); seq <= n; seq++ {
		srv.OnFrame(snd, requestFrame(seq, "echo", []byte{byte(seq)}), 0)
		if seq%3 == 0 {
			srv.OnFrame(snd, ackFrame(seq), 0) // some replies acked, some cached
		}
	}
	if err := srv.Close(); err != nil { // waits out background compactions
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.JournalCompactions == 0 {
		t.Fatalf("no compactions after %d records (threshold %d)", st.JournalRecords, threshold)
	}
	// Bounded: live records ≤ threshold plus the records of one in-progress
	// window (snapshot + appends since the last compaction claimed).
	if journal.Len() > 2*threshold+1 {
		t.Fatalf("journal holds %d live records after compaction, want ≤ %d", journal.Len(), 2*threshold+1)
	}

	srv2 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery from compacted journal: %v", err)
	}
	sess := srv2.Sessions()
	if len(sess) != 1 {
		t.Fatalf("recovered %d sessions", len(sess))
	}
	wantCached := n - n/3
	if sess[0].CachedReplies != wantCached || sess[0].AckedPending != n/3 || sess[0].MaxExecuted != n {
		t.Fatalf("recovered session %+v, want cached=%d acked=%d maxExec=%d", sess[0], wantCached, n/3, n)
	}
}

// poisonLog is a stable.Log stub whose appends fail with a typed
// *stable.PoisonedError after a budget of successes — the signature of a
// FileLog whose group-commit fsync failed.
type poisonLog struct {
	*stable.MemLog
	mu     sync.Mutex
	budget int
}

func (p *poisonLog) Append(rec []byte) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.budget <= 0 {
		return 0, &stable.PoisonedError{Cause: errors.New("disk gone")}
	}
	p.budget--
	return p.MemLog.Append(rec)
}

// TestJournaledServerRefusesWhenPoisoned is the durability contract: once
// the journal cannot accept records, the server refuses to execute new work
// (instead of silently continuing without durability), keeps serving cached
// replays, and surfaces the typed poisoned error.
func TestJournaledServerRefusesWhenPoisoned(t *testing.T) {
	// Budget 2: the Hello (LowSeq 1 > initial 0) journals a prune record,
	// then seq 1's exec record; seq 2's exec append is the one that fails.
	jl := &poisonLog{MemLog: stable.NewMemLog(stable.Options{}), budget: 2}
	up := true
	snd := &harnessSender{up: &up}
	execs := 0

	srv := NewServer(ServerConfig{ServerID: "srv", Journal: jl})
	srv.Register("echo", func(string, Request) ([]byte, error) { execs++; return []byte("ok"), nil })
	srv.OnConnect(snd, 0)
	srv.OnFrame(snd, helloFrame("c1", 1), 0)
	srv.OnFrame(snd, requestFrame(1, "echo", nil), 0) // journaled fine
	if reps := drainReplies(t, snd); len(reps) != 1 {
		t.Fatalf("healthy request got %d replies", len(reps))
	}

	// Budget exhausted: the exec append fails, the reply must NOT be
	// released, and the journal is poisoned.
	srv.OnFrame(snd, requestFrame(2, "echo", nil), 0)
	if reps := drainReplies(t, snd); len(reps) != 0 {
		t.Fatalf("reply released without durability")
	}
	if execs != 2 {
		t.Fatalf("execs = %d (handler for seq 2 should have run once before the failed append)", execs)
	}
	if err := srv.JournalError(); !errors.Is(err, stable.ErrPoisoned) {
		t.Fatalf("JournalError = %v, want ErrPoisoned", err)
	}

	// Further requests are refused before the handler runs.
	srv.OnFrame(snd, requestFrame(3, "echo", nil), 0)
	if execs != 2 {
		t.Fatalf("poisoned server ran a handler: execs = %d", execs)
	}
	if reps := drainReplies(t, snd); len(reps) != 0 {
		t.Fatal("poisoned server released a reply")
	}
	if got := srv.Stats().JournalRefused; got < 2 {
		t.Errorf("JournalRefused = %d, want ≥ 2", got)
	}

	// Cached replays still work: seq 1's reply was journaled and cached.
	srv.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	if reps := drainReplies(t, snd); len(reps) != 1 || string(reps[0].Result) != "ok" {
		t.Fatalf("cached replay unavailable while poisoned: %+v", reps)
	}
}

// TestJournalRecoveryFailureRefusesExecutes: a journal that cannot be
// replayed (unreadable at construction) must poison the server, not let it
// start with partial exactly-once state.
func TestJournalRecoveryFailureRefusesExecutes(t *testing.T) {
	jl := faults.WrapLog(stable.NewMemLog(stable.Options{}), 1, faults.LogFaultRates{ReplayFail: 1})
	up := true
	snd := &harnessSender{up: &up}
	execs := 0
	srv := NewServer(ServerConfig{ServerID: "srv", Journal: jl})
	srv.Register("echo", func(string, Request) ([]byte, error) { execs++; return nil, nil })
	if err := srv.JournalError(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("JournalError = %v, want injected replay failure", err)
	}
	srv.OnConnect(snd, 0)
	srv.OnFrame(snd, helloFrame("c1", 1), 0)
	srv.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	if execs != 0 {
		t.Fatalf("unrecovered server executed a request")
	}
	if got := srv.Stats().JournalRefused; got != 1 {
		t.Errorf("JournalRefused = %d, want 1", got)
	}
}

// TestJournalWithWorkerPool exercises the journal under the bounded worker
// pool: concurrent sessions execute in parallel, exec appends ride the same
// journal, and a rebuild recovers every released reply. Run with -race.
func TestJournalWithWorkerPool(t *testing.T) {
	journal := stable.NewMemLog(stable.Options{})
	srv := NewServer(ServerConfig{ServerID: "srv", Journal: journal, Workers: 4, JournalCompactEvery: 16})
	var mu sync.Mutex
	execs := map[string]int{}
	srv.Register("echo", func(clientID string, req Request) ([]byte, error) {
		mu.Lock()
		execs[fmt.Sprintf("%s/%d", clientID, req.Seq)]++
		mu.Unlock()
		return req.Args, nil
	})

	const clients, perClient = 4, 50
	up := true
	senders := make([]*harnessSender, clients)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		ci := ci
		senders[ci] = &harnessSender{up: &up}
		srv.OnConnect(senders[ci], 0)
		srv.OnFrame(senders[ci], helloFrame(fmt.Sprintf("c%d", ci), 1), 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(1); seq <= perClient; seq++ {
				srv.OnFrame(senders[ci], requestFrame(seq, "echo", []byte{byte(seq)}), 0)
			}
		}()
	}
	wg.Wait()
	srv.Quiesce()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Executed < clients*perClient {
		if time.Now().After(deadline) {
			t.Fatalf("pool stalled: executed %d/%d", srv.Stats().Executed, clients*perClient)
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for key, n := range execs {
		if n != 1 {
			t.Fatalf("request %s executed %d times", key, n)
		}
	}
	mu.Unlock()

	srv2 := NewServer(ServerConfig{ServerID: "srv", Journal: journal})
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	st := srv2.Stats()
	if st.RecoveredSessions != clients || st.RecoveredReplies != clients*perClient {
		t.Fatalf("recovered sessions=%d replies=%d, want %d/%d",
			st.RecoveredSessions, st.RecoveredReplies, clients, clients*perClient)
	}
}

// TestJournalDirtyAppendRecovers models the crash-before-ack write: the
// exec record reaches the journal durably but the server sees an error. The
// current incarnation must NOT release the reply (it poisons instead), and
// the next incarnation recovers the record — the redelivered request is
// answered from cache with the handler having run exactly once.
func TestJournalDirtyAppendRecovers(t *testing.T) {
	mem := stable.NewMemLog(stable.Options{})
	jl := faults.WrapLog(mem, 42, faults.LogFaultRates{AppendDirty: 1})
	up := true
	snd := &harnessSender{up: &up}
	execs := 0
	handler := func(string, Request) ([]byte, error) { execs++; return []byte("v"), nil }

	srv1 := NewServer(ServerConfig{ServerID: "srv", Journal: jl})
	srv1.Register("echo", handler)
	srv1.OnConnect(snd, 0)
	// LowSeq 0 keeps the Hello from journaling a prune record, so the first
	// (dirty) append is exactly seq 1's exec record.
	srv1.OnFrame(snd, helloFrame("c1", 0), 0)
	srv1.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	if reps := drainReplies(t, snd); len(reps) != 0 {
		t.Fatal("reply released despite journal append error")
	}
	if execs != 1 {
		t.Fatalf("execs = %d", execs)
	}
	if srv1.JournalError() == nil {
		t.Fatal("dirty append did not poison the incarnation that saw the error")
	}

	// Next incarnation: the record was durable, so recovery serves it.
	jl.SetEnabled(false)
	srv2 := NewServer(ServerConfig{ServerID: "srv", Journal: jl})
	srv2.Register("echo", handler)
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	srv2.OnConnect(snd, 0)
	srv2.OnFrame(snd, helloFrame("c1", 0), 0)
	snd.queue = nil
	srv2.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	reps := drainReplies(t, snd)
	if len(reps) != 1 || string(reps[0].Result) != "v" {
		t.Fatalf("recovered reply = %+v", reps)
	}
	if execs != 1 {
		t.Fatalf("handler re-ran for a durably journaled request: execs = %d", execs)
	}
}
