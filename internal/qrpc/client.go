package qrpc

import (
	"container/heap"
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"rover/internal/auth"
	"rover/internal/stable"
	"rover/internal/vtime"
	"rover/internal/wire"
)

// StatusInfo is the user-notification snapshot the paper's section 3.4
// calls for: "it is important to present the user with information about
// [the mobile environment's] current state." Applications surface it in
// their UI (queue depth, connectivity).
type StatusInfo struct {
	Connected     bool
	AuthRejected  bool
	Queued        int // requests not yet transmitted
	AwaitingReply int // transmitted, no reply yet
}

// ClientConfig configures a client engine.
type ClientConfig struct {
	// ClientID identifies this client to servers. Required.
	ClientID string
	// Key authenticates the client when the server has an auth registry.
	Key auth.Key
	// Log is the stable operation log. Required; queued requests live
	// there until their replies arrive.
	Log stable.Log
	// OnStatus, if set, is invoked (outside engine locks) whenever the
	// StatusInfo snapshot changes materially.
	OnStatus func(StatusInfo)
	// OnCallback receives server-initiated notifications.
	OnCallback func(topic string, payload []byte)
	// OnRecovered is invoked during NewClient for every request replayed
	// from the log after a crash, letting the application re-attach to its
	// promise.
	OnRecovered func(req Request, p *Promise)
	// OnPong receives liveness probe responses (the network scheduler's
	// link-quality input).
	OnPong func(now vtime.Time)
	// OnBusy, if set, is invoked (outside engine locks) when a server
	// refuses this client's Hello with a FrameBusy — it is past its
	// admission high-water mark and this client has no session there. The
	// owner typically rotates to a backup address; queued requests stay
	// queued and redeliver after the next successful handshake.
	OnBusy func()
	// NonceFn overrides the random nonce source (tests, determinism).
	NonceFn func() []byte
}

type reqState int

const (
	stateQueued reqState = iota
	stateSent
)

type pendingReq struct {
	req     Request
	enc     []byte // cached wire encoding of req; resends must not re-marshal
	logID   uint64
	promise *Promise
	state   reqState
	readyAt vtime.Time // queue entry usable once the log flush is charged
	sentAt  vtime.Time // last transmission time (RetryStale)
	heapIdx int        // index in the send queue, -1 when not queued
	sends   int
}

// Client is the client-side QRPC engine. All methods are safe for
// concurrent use; completion callbacks run outside the engine lock.
type Client struct {
	mu        sync.Mutex
	cfg       ClientConfig
	nextSeq   uint64
	pend      map[uint64]*pendingReq
	queue     sendQueue
	sender    Sender
	connected bool
	authBad   bool
	acks      []uint64
	stats     ClientStats
	closed    bool
	flushCost time.Duration
	// seqFloor is the durable sequence-number reservation: every seq below
	// it may have been used by some incarnation of this client.
	seqFloor  uint64
	metaLogID uint64
	// inflight holds sequence numbers whose Enqueue is between seq
	// assignment and registration in pend (the log append runs outside the
	// engine lock). Hello's LowSeq must not advance past them: a connect
	// racing an enqueue would otherwise make the server drop the request as
	// "below LowSeq" forever.
	inflight map[uint64]struct{}
	// queuedCount/sentCount track request states incrementally so Status
	// is O(1); scanning the pending map per enqueue made deep queues
	// quadratic (caught by BenchmarkEnqueueMemLog).
	queuedCount int
	sentCount   int
	// pumpLocked scratch, reused across pumps (only touched under mu; no
	// transport retains the slices — single frames pass by value and
	// BatchFrames copies payloads into a fresh batch).
	frameScratch []wire.Frame
	batchScratch []*pendingReq
	deferScratch []*pendingReq

	// Wire-compression negotiation state. compressWanted is the link
	// policy's wish (sched.Selector sets it per interface); peerCaps is
	// what the server's Welcome granted this session. Outbound frames
	// compress only when both agree.
	compressWanted bool
	peerCaps       uint64
}

// NewClient builds a client engine, replaying any requests that survive in
// the stable log from a previous incarnation.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ClientID == "" {
		return nil, fmt.Errorf("qrpc: ClientID is required")
	}
	if cfg.Log == nil {
		return nil, fmt.Errorf("qrpc: Log is required")
	}
	c := &Client{
		cfg:       cfg,
		nextSeq:   1,
		pend:      make(map[uint64]*pendingReq),
		inflight:  make(map[uint64]struct{}),
		flushCost: cfg.Log.Cost(),
	}
	type recovered struct {
		req Request
		p   *Promise
	}
	var recs []recovered
	var staleMetaIDs []uint64
	err := cfg.Log.Replay(func(id uint64, rec []byte) error {
		req, floor, isMeta, err := decodeRecord(rec)
		if err != nil {
			return err
		}
		if isMeta {
			if floor > c.seqFloor {
				c.seqFloor = floor
				if c.metaLogID != 0 {
					staleMetaIDs = append(staleMetaIDs, c.metaLogID)
				}
				c.metaLogID = id
			} else {
				staleMetaIDs = append(staleMetaIDs, id)
			}
			return nil
		}
		pr := &pendingReq{
			req:     *req,
			logID:   id,
			promise: newPromise(req.Seq),
			heapIdx: -1,
		}
		c.pend[req.Seq] = pr
		heap.Push(&c.queue, pr)
		c.queuedCount++
		if req.Seq >= c.nextSeq {
			c.nextSeq = req.Seq + 1
		}
		recs = append(recs, recovered{*req, pr.promise})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("qrpc: log replay: %w", err)
	}
	if c.nextSeq < c.seqFloor {
		c.nextSeq = c.seqFloor
	}
	for _, id := range staleMetaIDs {
		_ = cfg.Log.Remove(id)
	}
	if cfg.OnRecovered != nil {
		for _, r := range recs {
			cfg.OnRecovered(r.req, r.p)
		}
	}
	return c, nil
}

// Enqueue queues a request. It returns once the request is on the stable
// log — the non-blocking guarantee: this never waits for the network, only
// for the local flush. The returned promise completes when the reply
// arrives (possibly after arbitrarily many disconnections, or after a
// crash and recovery).
func (c *Client) Enqueue(service string, args []byte, pri Priority, now vtime.Time) (*Promise, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrEngineClosed
	}
	seq := c.nextSeq
	// Reserve a fresh sequence chunk durably BEFORE first use, so no crash
	// can ever lead to reuse.
	if seq >= c.seqFloor {
		newFloor := seq + seqReserveChunk
		metaID, err := c.cfg.Log.Append(encodeMetaRecord(newFloor))
		if err != nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("qrpc: sequence reservation: %w", err)
		}
		if c.metaLogID != 0 {
			_ = c.cfg.Log.Remove(c.metaLogID)
		}
		c.metaLogID = metaID
		c.seqFloor = newFloor
	}
	c.nextSeq++
	c.inflight[seq] = struct{}{}
	c.mu.Unlock()

	// The log append happens OUTSIDE the engine lock so that concurrent
	// Enqueues can coalesce onto a single group-commit fsync in the stable
	// log (see stable.FileLog). This is safe: the request cannot be
	// transmitted (and so no reply can race the bookkeeping below) until it
	// is registered in c.pend and pumped, which happens after the append.
	req := Request{Seq: seq, Priority: pri, Service: service, Args: args}
	scratch := wire.GetBuffer()
	scratch.PutByte(recRequest)
	req.MarshalWire(scratch)
	logID, err := c.cfg.Log.Append(scratch.Bytes())
	wire.PutBuffer(scratch)
	if err != nil {
		// Do NOT roll nextSeq back: a "dirty" append failure may have
		// durably written the record before erroring (crash-before-ack).
		// Reusing seq for the next enqueue would then collide with the
		// resurrected request after recovery. Sequence gaps are harmless —
		// the durable chunk reservation above already creates them.
		c.mu.Lock()
		delete(c.inflight, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("qrpc: stable log append: %w", err)
	}
	pr := &pendingReq{
		req:     req,
		logID:   logID,
		promise: newPromise(seq),
		readyAt: now.Add(c.flushCost),
		heapIdx: -1,
	}

	c.mu.Lock()
	delete(c.inflight, seq)
	// A Close that raced the append is harmless: the record is durable and
	// replays next incarnation; registering it here just keeps Status exact.
	c.pend[seq] = pr
	heap.Push(&c.queue, pr)
	c.queuedCount++
	c.stats.Enqueued++
	c.pumpLocked(now)
	status := c.statusLocked()
	c.mu.Unlock()
	c.notify(status)
	return pr.promise, nil
}

// Cancel withdraws a request that has not yet been transmitted. It reports
// whether cancellation succeeded; a request that has already been sent
// cannot be cancelled (the server may execute it). The promise of a
// cancelled request fails with ErrCancelled.
func (c *Client) Cancel(seq uint64) bool {
	c.mu.Lock()
	pr, ok := c.pend[seq]
	if !ok || pr.state != stateQueued || pr.sends > 0 {
		c.mu.Unlock()
		return false
	}
	if pr.heapIdx >= 0 {
		heap.Remove(&c.queue, pr.heapIdx)
	}
	delete(c.pend, seq)
	c.queuedCount--
	_ = c.cfg.Log.Remove(pr.logID)
	c.mu.Unlock()
	pr.promise.fulfill(nil, ErrCancelled)
	return true
}

// OnConnect attaches a transport. All unreplied requests become eligible
// for (re)transmission; a Hello frame precedes them.
func (c *Client) OnConnect(s Sender, now vtime.Time) {
	c.mu.Lock()
	c.sender = s
	c.connected = true
	c.authBad = false
	c.peerCaps = 0 // a new session must re-negotiate capabilities
	c.stats.Connects++
	// Anything sent on a previous connection but unreplied must go again.
	for _, pr := range c.pend {
		if pr.state == stateSent {
			pr.state = stateQueued
			c.sentCount--
			c.queuedCount++
			if pr.heapIdx < 0 {
				heap.Push(&c.queue, pr)
			}
		}
	}
	c.sendHelloLocked()
	c.pumpLocked(now)
	status := c.statusLocked()
	c.mu.Unlock()
	c.notify(status)
}

// OnDisconnect detaches the transport. Requests in flight stay pending
// and are redelivered on the next connect.
func (c *Client) OnDisconnect(now vtime.Time) {
	c.mu.Lock()
	c.connected = false
	c.sender = nil
	c.stats.Disconnects++
	status := c.statusLocked()
	c.mu.Unlock()
	c.notify(status)
}

// Pump transmits any ready queued requests and pending acks. Adapters call
// it when the link drains or when a request's log-flush delay elapses (see
// NextReadyAt).
func (c *Client) Pump(now vtime.Time) {
	c.mu.Lock()
	c.pumpLocked(now)
	c.mu.Unlock()
}

// RetryStale requeues requests that were transmitted more than maxAge ago
// without a reply, and pumps them. On reliable transports (TCP) this never
// fires — a connected link either delivers or disconnects — but unreliable
// media (radio links with frame loss, the mail transport's lossy relays)
// need a retransmission clock. Adapters over such media call it
// periodically; the server's reply cache absorbs any duplicates. It
// returns how many requests were requeued.
func (c *Client) RetryStale(now vtime.Time, maxAge time.Duration) int {
	c.mu.Lock()
	n := 0
	for _, pr := range c.pend {
		if pr.state == stateSent && now.Sub(pr.sentAt) >= maxAge {
			pr.state = stateQueued
			c.sentCount--
			c.queuedCount++
			if pr.heapIdx < 0 {
				heap.Push(&c.queue, pr)
			}
			n++
		}
	}
	if n > 0 {
		c.pumpLocked(now)
	}
	c.mu.Unlock()
	return n
}

// NextReadyAt returns the earliest future time at which a queued request
// becomes transmittable (its modeled log flush completes), or ok=false.
// The simulation adapter schedules a Pump there.
func (c *Client) NextReadyAt(now vtime.Time) (vtime.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flushCost == 0 {
		return 0, false
	}
	var best vtime.Time
	found := false
	for _, pr := range c.queue {
		if pr.readyAt > now && (!found || pr.readyAt < best) {
			best = pr.readyAt
			found = true
		}
	}
	return best, found
}

// OnFrame processes a frame from the transport. Batch frames are unpacked
// and their sub-frames processed in order, with the reply-triggered pump
// deferred to the end of the batch so that one batch of replies produces
// one piggybacked ack frame instead of N.
func (c *Client) OnFrame(f wire.Frame, now vtime.Time) {
	if f.Type == wire.FrameBatchZ {
		// A corrupt compressed batch is dropped like any damaged frame;
		// redelivery recovers its contents.
		zf, err := wire.InflateBatchFrame(f)
		if err != nil {
			return
		}
		f = zf
	}
	if f.Type == wire.FrameBatch {
		subs, err := wire.UnbatchFrames(f.Payload)
		if err != nil {
			return
		}
		for _, sf := range subs {
			c.onFrame(sf, now, false)
		}
		c.Pump(now)
		return
	}
	c.onFrame(f, now, true)
}

func (c *Client) onFrame(f wire.Frame, now vtime.Time, pump bool) {
	switch f.Type {
	case wire.FrameReply:
		c.onReply(f.Payload, now, pump)
	case wire.FrameCallback:
		var cb Callback
		if err := wire.Unmarshal(f.Payload, &cb); err != nil {
			return
		}
		if c.cfg.OnCallback != nil {
			c.cfg.OnCallback(cb.Topic, cb.Payload)
		}
	case wire.FrameWelcome:
		var w Welcome
		if err := wire.Unmarshal(f.Payload, &w); err == nil {
			c.mu.Lock()
			c.peerCaps = w.Caps
			c.mu.Unlock()
		}
		c.Pump(now)
	case wire.FrameAuthReject:
		c.mu.Lock()
		c.authBad = true
		status := c.statusLocked()
		c.mu.Unlock()
		c.notify(status)
	case wire.FramePing:
		c.mu.Lock()
		if c.sender != nil {
			c.sender.SendFrame(wire.Frame{Type: wire.FramePong})
		}
		c.mu.Unlock()
	case wire.FramePong:
		if c.cfg.OnPong != nil {
			c.cfg.OnPong(now)
		}
	case wire.FrameBusy:
		// The server refused our Hello: it is at its session high-water
		// mark and we are a stranger there. Nothing is lost — requests are
		// queued in the stable log — so just count it and let the owner
		// decide (typically rotate to a backup address and reconnect).
		c.mu.Lock()
		c.stats.BusyReceived++
		c.mu.Unlock()
		if c.cfg.OnBusy != nil {
			c.cfg.OnBusy()
		}
	}
}

func (c *Client) onReply(payload []byte, now vtime.Time, pump bool) {
	var rep Reply
	if err := wire.Unmarshal(payload, &rep); err != nil {
		return
	}
	c.mu.Lock()
	pr, ok := c.pend[rep.Seq]
	if !ok {
		// Duplicate reply (we already processed and acked, or the ack was
		// lost). Re-ack so the server can clear its cache.
		c.stats.Duplicates++
		c.acks = append(c.acks, rep.Seq)
		if pump {
			c.pumpLocked(now)
		}
		c.mu.Unlock()
		return
	}
	// Remove from the stable log BEFORE acking: if we crash between these
	// steps the request is redelivered and the server replays the cached
	// reply — at-most-once execution, at-least-once delivery.
	_ = c.cfg.Log.Remove(pr.logID)
	delete(c.pend, rep.Seq)
	if pr.state == stateQueued {
		c.queuedCount--
	} else {
		c.sentCount--
	}
	if pr.heapIdx >= 0 {
		heap.Remove(&c.queue, pr.heapIdx)
	}
	c.stats.Replies++
	c.acks = append(c.acks, rep.Seq)
	if pump {
		c.pumpLocked(now)
	}
	status := c.statusLocked()
	c.mu.Unlock()

	if rep.Status == StatusOK {
		pr.promise.fulfill(rep.Result, nil)
	} else {
		pr.promise.fulfill(nil, &RemoteError{Status: rep.Status, Message: rep.ErrMsg})
	}
	c.notify(status)
}

// maxPumpBatchBytes caps how much request payload one pump packs into a
// single batch frame; a deeper queue drains as several batches rather than
// one giant frame.
const maxPumpBatchBytes = 256 << 10

// pumpLocked drains ready requests to the transport in priority order.
// Everything sendable in one pass — the pending ack list piggybacked in
// front, then ready requests — is coalesced into a single FrameBatch, so a
// pump cycle costs the transport one write instead of one per message.
func (c *Client) pumpLocked(now vtime.Time) {
	if !c.connected || c.sender == nil || c.authBad {
		return
	}
	for {
		frames := c.frameScratch[:0]
		ackCount := len(c.acks)
		if ackCount > 0 {
			// Acks ride in front of the batch; they are tiny and unblock
			// server reply-cache state before the new requests land.
			frames = append(frames, wire.Frame{Type: wire.FrameAck, Payload: wire.Marshal(&Ack{Seqs: c.acks})})
		}
		deferred, batch := c.deferScratch[:0], c.batchScratch[:0]
		batchBytes := 0
		for c.queue.Len() > 0 && batchBytes < maxPumpBatchBytes {
			pr := c.queue[0]
			// readyAt only means something when a flush cost is modeled (the
			// virtual-time simulators, where one scheduler is the single time
			// base). With a real log the flush was paid synchronously inside
			// Enqueue, and comparing timestamps would wrongly defer requests
			// whenever caller and transport clocks have different epochs.
			if c.flushCost > 0 && pr.readyAt > now {
				// Not yet durable under virtual time; skip it without
				// blocking others (pop and re-push after the loop).
				heap.Pop(&c.queue)
				deferred = append(deferred, pr)
				continue
			}
			heap.Pop(&c.queue)
			if pr.enc == nil {
				pr.enc = wire.Marshal(&pr.req)
			}
			frames = append(frames, wire.Frame{Type: wire.FrameRequest, Payload: pr.enc})
			batch = append(batch, pr)
			batchBytes += len(pr.enc)
		}
		for _, pr := range deferred {
			heap.Push(&c.queue, pr)
		}
		// Park the scratch capacity for the next pump before any return.
		c.frameScratch, c.deferScratch, c.batchScratch = frames[:0], deferred[:0], batch[:0]
		if len(frames) == 0 {
			return
		}
		// Compress only when policy wants it AND the server's Welcome
		// granted the capability this session.
		zOK := c.compressWanted && c.peerCaps&CapCompressedBatch != 0
		out := wire.CoalesceFrames(frames, zOK)
		sent := c.sender.SendFrame(out)
		if !sent {
			// Link refused; retry after next connect. Requests go back on the
			// queue unchanged, acks stay pending — nothing was transmitted.
			for _, pr := range batch {
				heap.Push(&c.queue, pr)
			}
			return
		}
		if len(frames) > 1 {
			c.stats.BatchesSent++
		}
		if out.Type == wire.FrameBatchZ {
			c.stats.ZBatchesSent++
		}
		if ackCount > 0 {
			c.stats.AcksSent += int64(ackCount)
			c.acks = nil
		}
		for _, pr := range batch {
			pr.state = stateSent
			pr.sentAt = now
			c.queuedCount--
			c.sentCount++
			pr.sends++
			c.stats.Sent++
			if pr.sends > 1 {
				c.stats.Resent++
			}
		}
		if len(batch) == 0 {
			// Only the ack frame went out; anything left is deferred.
			return
		}
	}
}

// lowSeqLocked computes the LowSeq a Hello may advertise: nothing at or
// above it is still outstanding — neither registered in pend nor mid-Enqueue
// (the unlocked log-append window).
func (c *Client) lowSeqLocked() uint64 {
	low := c.nextSeq
	for seq := range c.pend {
		if seq < low {
			low = seq
		}
	}
	for seq := range c.inflight {
		if seq < low {
			low = seq
		}
	}
	return low
}

func (c *Client) sendHelloLocked() {
	c.sender.SendFrame(c.helloLocked())
}

// helloLocked builds the session-open frame, advertising the compressed-
// batch capability whenever the link policy wants compression (the server
// grants it back in the Welcome).
func (c *Client) helloLocked() wire.Frame {
	h := &Hello{ClientID: c.cfg.ClientID, LowSeq: c.lowSeqLocked()}
	if c.compressWanted {
		h.Caps |= CapCompressedBatch
	}
	if c.cfg.Key != nil {
		h.Nonce = c.nonce()
		h.Proof = auth.Prove(c.cfg.Key, c.cfg.ClientID, h.Nonce)
	}
	return wire.Frame{Type: wire.FrameHello, Payload: wire.Marshal(h)}
}

func (c *Client) nonce() []byte {
	if c.cfg.NonceFn != nil {
		return c.cfg.NonceFn()
	}
	n := make([]byte, 16)
	_, _ = rand.Read(n)
	return n
}

// Hello returns the session-open frame for connectionless transports (the
// mail transport prefixes every batch with it).
func (c *Client) Hello() wire.Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.helloLocked()
}

// SetCompression sets whether this client WANTS wire compression —
// normally decided per network interface by the scheduler (compress on
// CSLIP and WaveLAN, skip on Ethernet). Taking effect requires a server
// grant, negotiated at the next Hello/Welcome exchange: callers flip it
// before OnConnect. Frames never compress toward a server that did not
// advertise the capability.
func (c *Client) SetCompression(on bool) {
	c.mu.Lock()
	c.compressWanted = on
	c.mu.Unlock()
}

// Status returns the current user-notification snapshot.
func (c *Client) Status() StatusInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *Client) statusLocked() StatusInfo {
	return StatusInfo{
		Connected:     c.connected,
		AuthRejected:  c.authBad,
		Queued:        c.queuedCount,
		AwaitingReply: c.sentCount,
	}
}

func (c *Client) notify(s StatusInfo) {
	if c.cfg.OnStatus != nil {
		c.cfg.OnStatus(s)
	}
}

// Stats returns a snapshot of the engine counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pending returns the number of unreplied requests (queued + sent).
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pend)
}

// ClientID returns the configured client identity.
func (c *Client) ClientID() string { return c.cfg.ClientID }

// Close marks the engine closed. Pending requests remain on the stable
// log for the next incarnation; their promises stay incomplete.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// sendQueue is a priority heap: highest Priority first, FIFO within a
// priority level (by sequence number).
type sendQueue []*pendingReq

func (q sendQueue) Len() int { return len(q) }
func (q sendQueue) Less(i, j int) bool {
	if q[i].req.Priority != q[j].req.Priority {
		return q[i].req.Priority > q[j].req.Priority
	}
	return q[i].req.Seq < q[j].req.Seq
}
func (q sendQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx = i
	q[j].heapIdx = j
}
func (q *sendQueue) Push(x any) {
	pr := x.(*pendingReq)
	pr.heapIdx = len(*q)
	*q = append(*q, pr)
}
func (q *sendQueue) Pop() any {
	old := *q
	n := len(old)
	pr := old[n-1]
	old[n-1] = nil
	pr.heapIdx = -1
	*q = old[:n-1]
	return pr
}
