package qrpc

import (
	"testing"

	"rover/internal/faults"
	"rover/internal/stable"
)

// TestDirtyAppendNeverReusesSeq covers the crash-before-ack storage fault:
// the log write succeeds but the caller sees an error. The sequence number
// burned by the failed enqueue must NOT be reused — after recovery the
// dirty record resurrects as a live request, and a reused seq would collide
// with it (two different requests, one dedup slot at the server).
func TestDirtyAppendNeverReusesSeq(t *testing.T) {
	inner := stable.NewMemLog(stable.Options{})
	flog := faults.WrapLog(inner, 1, faults.LogFaultRates{})
	flog.SetEnabled(false)
	c, err := NewClient(ClientConfig{ClientID: "c", Log: flog})
	if err != nil {
		t.Fatal(err)
	}

	p1, err := c.Enqueue("svc", []byte("ok-1"), PriorityNormal, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One dirty failure: record persisted, error returned.
	dirty := faults.WrapLog(inner, 1, faults.LogFaultRates{AppendDirty: 1})
	c.cfg.Log = dirty
	if _, err := c.Enqueue("svc", []byte("dirty"), PriorityNormal, 0); err == nil {
		t.Fatal("dirty append must surface its error")
	}
	c.cfg.Log = flog
	p3, err := c.Enqueue("svc", []byte("ok-2"), PriorityNormal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Seq() == p1.Seq() || p3.Seq() == p1.Seq()+1 {
		t.Fatalf("seq %d reused the dirty enqueue's number (first was %d)", p3.Seq(), p1.Seq())
	}

	// Recovery: the dirty record comes back as a live request alongside the
	// two healthy ones, each with a distinct seq.
	c2, err := NewClient(ClientConfig{ClientID: "c", Log: inner})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make(map[uint64]string)
	inner.Replay(func(_ uint64, rec []byte) error {
		req, _, isMeta, err := decodeRecord(rec)
		if err != nil || isMeta {
			return nil
		}
		if prev, dup := seqs[req.Seq]; dup {
			t.Fatalf("seq %d assigned to both %q and %q", req.Seq, prev, req.Args)
		}
		seqs[req.Seq] = string(req.Args)
		return nil
	})
	if len(seqs) != 3 {
		t.Fatalf("recovered %d distinct requests, want 3: %v", len(seqs), seqs)
	}
	if got := c2.Pending(); got != 3 {
		t.Fatalf("Pending after recovery = %d, want 3", got)
	}
}
