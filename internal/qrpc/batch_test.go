package qrpc

import (
	"testing"

	"rover/internal/wire"
)

// TestAckPiggybacksOnRequestBatch pins the frame-coalescing contract: a
// pump cycle packs the pending ack list and every ready request into ONE
// FrameBatch — acks ride in front, requests follow in priority order — so
// the transport pays a single write for the whole cycle.
func TestAckPiggybacksOnRequestBatch(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{ServerID: "srv"})
	h.server.Register("echo", echoHandler)
	h.connect()

	p1, err := h.client.Enqueue("echo", []byte("one"), PriorityNormal, h.now)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the first request to the server by hand so the reply is in
	// flight but not yet delivered.
	for len(h.cs.queue) > 0 {
		f := h.cs.queue[0]
		h.cs.queue = h.cs.queue[1:]
		h.server.OnFrame(h.sc, f, h.now)
	}
	if len(h.sc.queue) == 0 {
		t.Fatal("no reply queued")
	}
	// Refuse the client's sends: the reply's ack must stay pending instead
	// of going out on its own (a dead link mid-session).
	h.cs.refuse = true
	for len(h.sc.queue) > 0 {
		f := h.sc.queue[0]
		h.sc.queue = h.sc.queue[1:]
		h.client.OnFrame(f, h.now)
	}
	if res, err, ok := p1.Result(); !ok || err != nil || string(res) != "echo:one" {
		t.Fatalf("p1 = %q, %v, %v", res, err, ok)
	}
	// Two more requests queue up while the link refuses traffic.
	p2, err := h.client.Enqueue("echo", []byte("two"), PriorityNormal, h.now)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := h.client.Enqueue("echo", []byte("three"), PriorityNormal, h.now)
	if err != nil {
		t.Fatal(err)
	}

	// Link comes back: one pump must emit exactly one frame — a batch of
	// [ack, request, request].
	h.cs.refuse = false
	sentBefore := h.cs.sent
	h.client.Pump(h.now)
	if got := h.cs.sent - sentBefore; got != 1 {
		t.Fatalf("pump sent %d frames, want 1 coalesced batch", got)
	}
	f := h.cs.queue[len(h.cs.queue)-1]
	if f.Type != wire.FrameBatch {
		t.Fatalf("pump emitted %v, want FrameBatch", f.Type)
	}
	subs, err := wire.UnbatchFrames(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("batch carries %d frames, want 3", len(subs))
	}
	if subs[0].Type != wire.FrameAck {
		t.Fatalf("batch[0] = %v, want the piggybacked ack in front", subs[0].Type)
	}
	var ack Ack
	if err := wire.Unmarshal(subs[0].Payload, &ack); err != nil {
		t.Fatal(err)
	}
	if len(ack.Seqs) != 1 || ack.Seqs[0] != p1.Seq() {
		t.Fatalf("ack seqs = %v, want [%d]", ack.Seqs, p1.Seq())
	}
	for i, want := range []uint64{p2.Seq(), p3.Seq()} {
		sf := subs[i+1]
		if sf.Type != wire.FrameRequest {
			t.Fatalf("batch[%d] = %v, want FrameRequest", i+1, sf.Type)
		}
		var req Request
		if err := wire.Unmarshal(sf.Payload, &req); err != nil {
			t.Fatal(err)
		}
		if req.Seq != want {
			t.Fatalf("batch[%d] seq = %d, want %d (enqueue order)", i+1, req.Seq, want)
		}
	}
	if got := h.client.Stats().BatchesSent; got < 1 {
		t.Errorf("ClientStats.BatchesSent = %d, want >= 1", got)
	}

	// The batch must land as three ordinary frames server-side.
	h.settle()
	for _, p := range []*Promise{p2, p3} {
		if res, err, ok := p.Result(); !ok || err != nil || len(res) == 0 {
			t.Fatalf("follow-up result = %q, %v, %v", res, err, ok)
		}
	}
	if got := h.server.Stats().Executed; got != 3 {
		t.Errorf("Executed = %d, want 3", got)
	}
}
