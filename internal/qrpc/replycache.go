package qrpc

import "container/list"

// replyCache is a server-global, byte-bounded LRU of *encoded* replies.
//
// The at-most-once machinery keeps decoded Replies in each session until
// the client acknowledges them; before this cache, every redelivered
// request (and every exec record streamed to a replica) paid a fresh
// wire.Marshal of the same Reply. The cache keeps the encoding produced at
// execution time so the replay path and the replication hook reuse it —
// the marshal happens once, at execute.
//
// It is an optimization only: eviction can never break correctness because
// the decoded Reply stays in the session cache and a miss simply re-encodes
// it (ServerStats.ReplyCacheHits/Misses/Evictions count the traffic).
// Entries are dropped eagerly when their reply is acked or pruned. All
// methods are nil-receiver safe (a nil cache means "disabled") and callers
// hold Server.mu.
type replyCache struct {
	max int // byte budget across all entries
	cur int
	ll  *list.List // front = most recently used; values are *replyCacheEntry
	m   map[replyCacheKey]*list.Element
}

type replyCacheKey struct {
	clientID string
	seq      uint64
}

type replyCacheEntry struct {
	key replyCacheKey
	enc []byte
}

// defaultReplyCacheBytes is the budget when ServerConfig.ReplyCacheBytes
// is zero. Sized so ~10k sessions with one smallish unacked reply each fit.
const defaultReplyCacheBytes = 8 << 20

// newReplyCache builds a cache with the given byte budget: zero selects the
// default, negative disables the cache entirely (returns nil).
func newReplyCache(budget int) *replyCache {
	if budget < 0 {
		return nil
	}
	if budget == 0 {
		budget = defaultReplyCacheBytes
	}
	return &replyCache{
		max: budget,
		ll:  list.New(),
		m:   make(map[replyCacheKey]*list.Element),
	}
}

func (c *replyCache) get(clientID string, seq uint64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	el, ok := c.m[replyCacheKey{clientID: clientID, seq: seq}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*replyCacheEntry).enc, true
}

// put inserts (or refreshes) an encoding and returns how many older entries
// were evicted to stay inside the budget. Encodings larger than the whole
// budget are not cached — they would evict everything and then miss anyway.
func (c *replyCache) put(clientID string, seq uint64, enc []byte) int64 {
	if c == nil || len(enc) > c.max {
		return 0
	}
	key := replyCacheKey{clientID: clientID, seq: seq}
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*replyCacheEntry)
		c.cur += len(enc) - len(ent.enc)
		ent.enc = enc
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&replyCacheEntry{key: key, enc: enc})
		c.cur += len(enc)
	}
	var evicted int64
	for c.cur > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*replyCacheEntry)
		c.ll.Remove(back)
		delete(c.m, ent.key)
		c.cur -= len(ent.enc)
		evicted++
	}
	return evicted
}

func (c *replyCache) delete(clientID string, seq uint64) {
	if c == nil {
		return
	}
	key := replyCacheKey{clientID: clientID, seq: seq}
	if el, ok := c.m[key]; ok {
		c.cur -= len(el.Value.(*replyCacheEntry).enc)
		c.ll.Remove(el)
		delete(c.m, key)
	}
}

// bytes reports the current cached payload size (stats/tests).
func (c *replyCache) bytes() int {
	if c == nil {
		return 0
	}
	return c.cur
}
