package qrpc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rover/internal/auth"
	"rover/internal/stable"
	"rover/internal/vtime"
	"rover/internal/wire"
)

// harness wires a client engine to a server engine through queued frame
// delivery (mirroring how the transport adapters behave: frames are never
// delivered on the sender's stack, so engine locks cannot reenter).
type harness struct {
	t      *testing.T
	client *Client
	server *Server
	cs     *harnessSender // client -> server
	sc     *harnessSender // server -> client
	now    vtime.Time
	up     bool
}

type harnessSender struct {
	up     *bool
	queue  []wire.Frame
	sent   int
	refuse bool
}

func (h *harnessSender) SendFrame(f wire.Frame) bool {
	if !*h.up || h.refuse {
		return false
	}
	h.queue = append(h.queue, f)
	h.sent++
	return true
}

func newHarness(t *testing.T, ccfg ClientConfig, scfg ServerConfig) *harness {
	t.Helper()
	if ccfg.ClientID == "" {
		ccfg.ClientID = "client-1"
	}
	if ccfg.Log == nil {
		ccfg.Log = stable.NewMemLog(stable.Options{})
	}
	c, err := NewClient(ccfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	h := &harness{t: t, client: c, server: NewServer(scfg)}
	h.cs = &harnessSender{up: &h.up}
	h.sc = &harnessSender{up: &h.up}
	return h
}

// connect brings the link up and performs the handshake + drain.
func (h *harness) connect() {
	h.up = true
	h.server.OnConnect(h.sc, h.now)
	h.client.OnConnect(h.cs, h.now)
	h.settle()
}

func (h *harness) disconnect() {
	h.up = false
	h.cs.queue = nil
	h.sc.queue = nil
	h.client.OnDisconnect(h.now)
	h.server.OnDisconnect(h.sc, h.now)
}

// settle delivers queued frames in both directions until quiescent.
func (h *harness) settle() {
	for i := 0; i < 10000; i++ {
		if len(h.cs.queue) == 0 && len(h.sc.queue) == 0 {
			return
		}
		if len(h.cs.queue) > 0 {
			f := h.cs.queue[0]
			h.cs.queue = h.cs.queue[1:]
			h.server.OnFrame(h.sc, f, h.now)
			continue
		}
		f := h.sc.queue[0]
		h.sc.queue = h.sc.queue[1:]
		h.client.OnFrame(f, h.now)
	}
	h.t.Fatal("harness did not settle")
}

func echoHandler(clientID string, req Request) ([]byte, error) {
	return append([]byte("echo:"), req.Args...), nil
}

func TestRoundTrip(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{ServerID: "srv"})
	h.server.Register("echo", echoHandler)
	h.connect()
	p, err := h.client.Enqueue("echo", []byte("hi"), PriorityNormal, h.now)
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	h.settle()
	res, err, ok := p.Result()
	if !ok || err != nil || string(res) != "echo:hi" {
		t.Fatalf("Result = %q, %v, %v", res, err, ok)
	}
	if h.client.Pending() != 0 {
		t.Errorf("Pending = %d", h.client.Pending())
	}
	if got := h.server.Stats().Executed; got != 1 {
		t.Errorf("Executed = %d", got)
	}
	// Reply acked: server cache empty.
	h.settle()
	for _, s := range h.server.Sessions() {
		if s.CachedReplies != 0 {
			t.Errorf("reply cache not pruned: %+v", s)
		}
	}
}

func TestNonBlockingWhileDisconnected(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	// Never connected: enqueues must succeed instantly.
	var promises []*Promise
	for i := 0; i < 100; i++ {
		p, err := h.client.Enqueue("echo", []byte{byte(i)}, PriorityNormal, h.now)
		if err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
		promises = append(promises, p)
	}
	if h.client.Pending() != 100 {
		t.Fatalf("Pending = %d", h.client.Pending())
	}
	st := h.client.Status()
	if st.Connected || st.Queued != 100 || st.AwaitingReply != 0 {
		t.Errorf("Status = %+v", st)
	}
	// Reconnection drains everything.
	h.connect()
	for i, p := range promises {
		res, err, ok := p.Result()
		if !ok || err != nil || len(res) != 6 || res[5] != byte(i) {
			t.Fatalf("promise %d: %q, %v, %v", i, res, err, ok)
		}
	}
	if got := h.server.Stats().Executed; got != 100 {
		t.Errorf("Executed = %d", got)
	}
}

func TestPriorityDrainOrder(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	var order []byte
	h.server.Register("rec", func(_ string, req Request) ([]byte, error) {
		order = append(order, req.Args[0])
		return nil, nil
	})
	// Queue while disconnected: lows first, then a high, then normals.
	h.client.Enqueue("rec", []byte{'l'}, PriorityLow, h.now)
	h.client.Enqueue("rec", []byte{'m'}, PriorityNormal, h.now)
	h.client.Enqueue("rec", []byte{'h'}, PriorityHigh, h.now)
	h.client.Enqueue("rec", []byte{'n'}, PriorityNormal, h.now)
	h.client.Enqueue("rec", []byte{'f'}, PriorityForeground, h.now)
	h.connect()
	if string(order) != "fhmnl" {
		t.Errorf("drain order %q, want fhmnl (priority desc, FIFO within level)", order)
	}
}

func TestRedeliveryAfterDisconnect(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	h.connect()
	// Link refuses frames: the request stays pending.
	h.cs.refuse = true
	p, _ := h.client.Enqueue("echo", []byte("x"), PriorityNormal, h.now)
	h.settle()
	if p.Ready() {
		t.Fatal("promise completed with dead link")
	}
	h.disconnect()
	h.cs.refuse = false
	h.connect()
	if res, err, ok := p.Result(); !ok || err != nil || string(res) != "echo:x" {
		t.Fatalf("after reconnect: %q, %v, %v", res, err, ok)
	}
}

func TestAtMostOnceExecution(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	execs := 0
	h.server.Register("count", func(_ string, req Request) ([]byte, error) {
		execs++
		return []byte("done"), nil
	})
	h.connect()
	p, _ := h.client.Enqueue("count", nil, PriorityNormal, h.now)
	// Deliver request to server, then LOSE the reply (simulates reply lost
	// in a link outage).
	h.server.OnFrame(h.sc, h.cs.queue[0], h.now)
	h.cs.queue = nil
	h.sc.queue = nil
	if execs != 1 {
		t.Fatalf("execs = %d", execs)
	}
	// Client reconnects and redelivers; server must replay, not re-execute.
	h.disconnect()
	h.connect()
	if execs != 1 {
		t.Fatalf("re-executed: execs = %d", execs)
	}
	if res, err, ok := p.Result(); !ok || err != nil || string(res) != "done" {
		t.Fatalf("promise: %q %v %v", res, err, ok)
	}
	if h.server.Stats().ReplaysServed == 0 {
		t.Error("no replay served")
	}
}

func TestCrashRecoveryRedelivers(t *testing.T) {
	log := stable.NewMemLog(stable.Options{})
	h := newHarness(t, ClientConfig{ClientID: "c", Log: log}, ServerConfig{})
	execs := 0
	h.server.Register("work", func(_ string, req Request) ([]byte, error) {
		execs++
		return []byte("r"), nil
	})
	// Queue 3 requests while disconnected, then "crash" (drop the engine).
	h.client.Enqueue("work", []byte("1"), PriorityNormal, h.now)
	h.client.Enqueue("work", []byte("2"), PriorityNormal, h.now)
	h.client.Enqueue("work", []byte("3"), PriorityNormal, h.now)
	h.client.Close()

	// New incarnation over the same log.
	var recoveredSeqs []uint64
	var recoveredPromises []*Promise
	c2, err := NewClient(ClientConfig{
		ClientID: "c",
		Log:      log,
		OnRecovered: func(req Request, p *Promise) {
			recoveredSeqs = append(recoveredSeqs, req.Seq)
			recoveredPromises = append(recoveredPromises, p)
		},
	})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(recoveredSeqs) != 3 {
		t.Fatalf("recovered %v", recoveredSeqs)
	}
	h.client = c2
	h.connect()
	if execs != 3 {
		t.Errorf("execs = %d", execs)
	}
	for i, p := range recoveredPromises {
		if res, err, ok := p.Result(); !ok || err != nil || string(res) != "r" {
			t.Errorf("recovered promise %d: %q %v %v", i, res, err, ok)
		}
	}
	// Only the sequence-reservation meta record may remain.
	if log.Len() > 1 {
		t.Errorf("log still holds %d records", log.Len())
	}
	// New sequence numbers must not collide with recovered ones.
	p4, _ := c2.Enqueue("work", []byte("4"), PriorityNormal, h.now)
	if p4.Seq() <= recoveredSeqs[2] {
		t.Errorf("seq reuse: %d <= %d", p4.Seq(), recoveredSeqs[2])
	}
}

func TestCrashAfterReplyBeforeAckReplays(t *testing.T) {
	// Client receives the reply, removes the log record, crashes before
	// acking. Server must keep the cached reply until an ack arrives, and
	// the new incarnation (with an empty log) must not confuse it.
	log := stable.NewMemLog(stable.Options{})
	h := newHarness(t, ClientConfig{ClientID: "c", Log: log}, ServerConfig{})
	execs := 0
	h.server.Register("w", func(string, Request) ([]byte, error) {
		execs++
		return []byte("ok"), nil
	})
	h.connect()
	p, _ := h.client.Enqueue("w", nil, PriorityNormal, h.now)
	// Deliver request; deliver reply to the client; DROP the ack.
	h.server.OnFrame(h.sc, h.cs.queue[0], h.now)
	h.cs.queue = nil
	h.client.OnFrame(h.sc.queue[0], h.now)
	h.sc.queue = nil
	h.cs.queue = nil // ack dropped
	if !p.Ready() {
		t.Fatal("reply not processed")
	}
	if log.Len() > 1 { // meta record only
		t.Fatal("log record not removed on reply")
	}
	// New incarnation: empty log, LowSeq advertises everything consumed.
	h.client.Close()
	c2, err := NewClient(ClientConfig{ClientID: "c", Log: log})
	if err != nil {
		t.Fatal(err)
	}
	h.client = c2
	h.disconnect()
	h.connect()
	// Hello's LowSeq lets the server prune the orphaned cached reply.
	for _, s := range h.server.Sessions() {
		if s.CachedReplies != 0 {
			t.Errorf("orphaned reply cache survived: %+v", s)
		}
	}
	if execs != 1 {
		t.Errorf("execs = %d", execs)
	}
}

func TestAuthAcceptReject(t *testing.T) {
	key, _ := auth.NewKey()
	reg := auth.NewRegistry()
	reg.Add("good", key)

	// Good client.
	h := newHarness(t, ClientConfig{ClientID: "good", Key: key}, ServerConfig{Auth: reg})
	h.server.Register("echo", echoHandler)
	h.connect()
	p, _ := h.client.Enqueue("echo", []byte("y"), PriorityNormal, h.now)
	h.settle()
	if res, err, ok := p.Result(); !ok || err != nil || string(res) != "echo:y" {
		t.Fatalf("authed request failed: %q %v %v", res, err, ok)
	}

	// Wrong key.
	badKey, _ := auth.NewKey()
	h2 := newHarness(t, ClientConfig{ClientID: "good", Key: badKey}, ServerConfig{Auth: reg})
	h2.server.Register("echo", echoHandler)
	h2.connect()
	p2, _ := h2.client.Enqueue("echo", []byte("z"), PriorityNormal, h2.now)
	h2.settle()
	if p2.Ready() {
		t.Fatal("request executed despite auth failure")
	}
	if !h2.client.Status().AuthRejected {
		t.Error("client did not record auth rejection")
	}
	if h2.server.Stats().AuthFailures != 1 {
		t.Errorf("AuthFailures = %d", h2.server.Stats().AuthFailures)
	}

	// No key at all.
	h3 := newHarness(t, ClientConfig{ClientID: "good"}, ServerConfig{Auth: reg})
	h3.server.Register("echo", echoHandler)
	h3.connect()
	h3.client.Enqueue("echo", []byte("w"), PriorityNormal, h3.now)
	h3.settle()
	if h3.server.Stats().Executed != 0 {
		t.Error("unauthenticated request executed")
	}
}

func TestHandlerErrors(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("fail", func(string, Request) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	h.connect()
	p, _ := h.client.Enqueue("fail", nil, PriorityNormal, h.now)
	h.settle()
	_, err, ok := p.Result()
	if !ok || err == nil {
		t.Fatal("expected app error")
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusAppError || re.Message != "kaboom" {
		t.Errorf("error = %v", err)
	}

	p2, _ := h.client.Enqueue("nosuchservice", nil, PriorityNormal, h.now)
	h.settle()
	_, err2, _ := p2.Result()
	if !errors.As(err2, &re) || re.Status != StatusNoService {
		t.Errorf("no-service error = %v", err2)
	}
}

func TestCancel(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	// Disconnected: cancellable.
	p, _ := h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	if !h.client.Cancel(p.Seq()) {
		t.Fatal("Cancel failed on queued request")
	}
	if _, err, ok := p.Result(); !ok || !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled promise: %v, %v", err, ok)
	}
	if h.client.Pending() != 0 {
		t.Error("cancelled request still pending")
	}
	// Sent: not cancellable.
	h.connect()
	p2, _ := h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	if h.client.Cancel(p2.Seq()) {
		t.Error("Cancel succeeded on sent request")
	}
	h.settle()
}

func TestServerCallbacks(t *testing.T) {
	var topics []string
	h := newHarness(t, ClientConfig{
		OnCallback: func(topic string, payload []byte) {
			topics = append(topics, topic+":"+string(payload))
		},
	}, ServerConfig{})
	h.connect()
	if !h.server.SendCallback("client-1", "invalidate", []byte("urn:rover:x/y")) {
		t.Fatal("SendCallback failed")
	}
	h.settle()
	if len(topics) != 1 || topics[0] != "invalidate:urn:rover:x/y" {
		t.Errorf("callbacks = %v", topics)
	}
	// Unknown client: reports false.
	if h.server.SendCallback("ghost", "t", nil) {
		t.Error("callback to unknown client succeeded")
	}
	// Disconnected: reports false.
	h.disconnect()
	if h.server.SendCallback("client-1", "t", nil) {
		t.Error("callback to disconnected client succeeded")
	}
}

func TestStatusNotifications(t *testing.T) {
	var snaps []StatusInfo
	h := newHarness(t, ClientConfig{
		OnStatus: func(s StatusInfo) { snaps = append(snaps, s) },
	}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	if len(snaps) == 0 || snaps[len(snaps)-1].Queued != 1 {
		t.Fatalf("snaps after enqueue: %+v", snaps)
	}
	h.connect()
	last := snaps[len(snaps)-1]
	if !last.Connected || last.Queued != 0 || last.AwaitingReply != 0 {
		t.Errorf("final status %+v", last)
	}
}

func TestPromiseCallbacksAndWait(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	p, _ := h.client.Enqueue("echo", []byte("cb"), PriorityNormal, h.now)
	fired := 0
	p.OnComplete(func(p *Promise) { fired++ })
	h.connect()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Registering after completion fires immediately.
	p.OnComplete(func(p *Promise) { fired++ })
	if fired != 2 {
		t.Fatalf("late registration: fired = %d", fired)
	}
	// Wait returns instantly on a completed promise.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	res, err := p.Wait(ctx)
	if err != nil || string(res) != "echo:cb" {
		t.Errorf("Wait = %q, %v", res, err)
	}
	// Wait honors context cancellation for incomplete promises.
	p2, _ := h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	h.disconnect()
	p3, _ := h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	_ = p2
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, err := p3.Wait(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait on stuck promise: %v", err)
	}
}

func TestClickAheadPattern(t *testing.T) {
	// A promise callback enqueues a follow-up request — the web proxy's
	// click-ahead pattern. This exercises engine re-entrancy.
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("fetch", func(_ string, req Request) ([]byte, error) {
		return append([]byte("page:"), req.Args...), nil
	})
	h.connect()
	var second *Promise
	p, _ := h.client.Enqueue("fetch", []byte("a"), PriorityNormal, h.now)
	p.OnComplete(func(p *Promise) {
		second, _ = h.client.Enqueue("fetch", []byte("b"), PriorityNormal, h.now)
	})
	h.settle()
	if second == nil {
		t.Fatal("follow-up not enqueued")
	}
	h.settle()
	if res, err, ok := second.Result(); !ok || err != nil || string(res) != "page:b" {
		t.Fatalf("follow-up: %q %v %v", res, err, ok)
	}
}

func TestFlushCostDelaysTransmission(t *testing.T) {
	log := stable.NewMemLog(stable.Options{FlushCost: 10 * time.Millisecond})
	h := newHarness(t, ClientConfig{ClientID: "c", Log: log}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	h.connect()
	p, _ := h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	h.settle()
	if p.Ready() {
		t.Fatal("request transmitted before modeled flush completed")
	}
	ready, ok := h.client.NextReadyAt(h.now)
	if !ok || ready != h.now.Add(10*time.Millisecond) {
		t.Fatalf("NextReadyAt = %v, %v", ready, ok)
	}
	h.now = ready
	h.client.Pump(h.now)
	h.settle()
	if !p.Ready() {
		t.Fatal("request not transmitted after flush window")
	}
}

func TestLogAppendFailureSurfacesError(t *testing.T) {
	log := stable.NewMemLog(stable.Options{})
	h := newHarness(t, ClientConfig{ClientID: "c", Log: log}, ServerConfig{})
	log.FailNext(1)
	if _, err := h.client.Enqueue("x", nil, PriorityNormal, h.now); err == nil {
		t.Fatal("enqueue succeeded despite log failure")
	}
	// Engine remains usable.
	if _, err := h.client.Enqueue("x", nil, PriorityNormal, h.now); err != nil {
		t.Fatalf("enqueue after failure: %v", err)
	}
}

func TestEnqueueAfterClose(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.client.Close()
	if _, err := h.client.Enqueue("x", nil, PriorityNormal, h.now); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("error = %v", err)
	}
}

func TestClientStats(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	h.client.Enqueue("echo", nil, PriorityNormal, h.now)
	h.connect()
	h.disconnect()
	h.connect()
	st := h.client.Stats()
	if st.Enqueued != 1 || st.Replies != 1 || st.Connects != 2 || st.Disconnects != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []struct {
		enc func() []byte
		dec func([]byte) error
	}{
		{
			enc: func() []byte {
				return wire.Marshal(&Hello{ClientID: "c", Nonce: []byte{1}, Proof: []byte{2, 3}, LowSeq: 9})
			},
			dec: func(p []byte) error {
				var m Hello
				if err := wire.Unmarshal(p, &m); err != nil {
					return err
				}
				if m.ClientID != "c" || m.LowSeq != 9 || len(m.Proof) != 2 {
					t.Error("Hello fields")
				}
				return nil
			},
		},
		{
			enc: func() []byte {
				return wire.Marshal(&Request{Seq: 7, Priority: PriorityHigh, Service: "s", Args: []byte("a")})
			},
			dec: func(p []byte) error {
				var m Request
				if err := wire.Unmarshal(p, &m); err != nil {
					return err
				}
				if m.Seq != 7 || m.Priority != PriorityHigh || m.Service != "s" {
					t.Error("Request fields")
				}
				return nil
			},
		},
		{
			enc: func() []byte {
				return wire.Marshal(&Reply{Seq: 7, Status: StatusAppError, ErrMsg: "e"})
			},
			dec: func(p []byte) error {
				var m Reply
				if err := wire.Unmarshal(p, &m); err != nil {
					return err
				}
				if m.Seq != 7 || m.Status != StatusAppError || m.ErrMsg != "e" {
					t.Error("Reply fields")
				}
				return nil
			},
		},
		{
			enc: func() []byte { return wire.Marshal(&Ack{Seqs: []uint64{1, 5, 9}}) },
			dec: func(p []byte) error {
				var m Ack
				if err := wire.Unmarshal(p, &m); err != nil {
					return err
				}
				if len(m.Seqs) != 3 || m.Seqs[2] != 9 {
					t.Error("Ack fields")
				}
				return nil
			},
		},
		{
			enc: func() []byte { return wire.Marshal(&Callback{Topic: "t", Payload: []byte("p")}) },
			dec: func(p []byte) error {
				var m Callback
				if err := wire.Unmarshal(p, &m); err != nil {
					return err
				}
				if m.Topic != "t" || string(m.Payload) != "p" {
					t.Error("Callback fields")
				}
				return nil
			},
		},
	}
	for i, m := range msgs {
		if err := m.dec(m.enc()); err != nil {
			t.Errorf("msg %d: %v", i, err)
		}
	}
}

// Property: request log records round-trip for arbitrary content, and meta
// records preserve their floor.
func TestQuickLogRecordRoundTrip(t *testing.T) {
	f := func(seq uint64, pri uint8, svc string, args []byte, floor uint64) bool {
		req := &Request{Seq: seq, Priority: Priority(pri), Service: svc, Args: args}
		back, _, isMeta, err := decodeRecord(encodeRequestRecord(req))
		if err != nil || isMeta || back == nil {
			return false
		}
		if back.Seq != seq || back.Priority != Priority(pri) || back.Service != svc ||
			string(back.Args) != string(args) {
			return false
		}
		_, gotFloor, isMeta, err := decodeRecord(encodeMetaRecord(floor))
		return err == nil && isMeta && gotFloor == floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	if _, _, _, err := decodeRecord([]byte{'Z', 1, 2}); err == nil {
		t.Error("unknown record kind accepted")
	}
	if _, _, _, err := decodeRecord(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, _, _, err := decodeRecord([]byte{'Q', 0xFF}); err == nil {
		t.Error("truncated request record accepted")
	}
}

// Property: any interleaving of connects/disconnects with enqueues still
// completes every request exactly once.
func TestQuickEventualCompletion(t *testing.T) {
	f := func(script []byte) bool {
		h := newHarness(t, ClientConfig{}, ServerConfig{})
		execsPerSeq := map[uint64]int{}
		h.server.Register("w", func(_ string, req Request) ([]byte, error) {
			execsPerSeq[req.Seq]++
			return []byte("ok"), nil
		})
		var promises []*Promise
		for _, b := range script {
			switch b % 4 {
			case 0, 1:
				p, err := h.client.Enqueue("w", []byte{b}, Priority(b%11), h.now)
				if err != nil {
					return false
				}
				promises = append(promises, p)
			case 2:
				h.connect()
			case 3:
				h.disconnect()
			}
		}
		h.connect() // final drain
		for _, p := range promises {
			if res, err, ok := p.Result(); !ok || err != nil || string(res) != "ok" {
				return false
			}
		}
		for _, n := range execsPerSeq {
			if n != 1 {
				return false
			}
		}
		// Invariant: the incremental status counters match a full scan of
		// the pending table (they feed the user-notification UI).
		h.client.mu.Lock()
		scanQueued, scanSent := 0, 0
		for _, pr := range h.client.pend {
			if pr.state == stateQueued {
				scanQueued++
			} else {
				scanSent++
			}
		}
		countersOK := scanQueued == h.client.queuedCount && scanSent == h.client.sentCount
		h.client.mu.Unlock()
		return countersOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastCallback(t *testing.T) {
	// Two clients on one server; a broadcast reaches all but the origin.
	log1 := stable.NewMemLog(stable.Options{})
	log2 := stable.NewMemLog(stable.Options{})
	var got1, got2 []string
	c1, _ := NewClient(ClientConfig{ClientID: "c1", Log: log1,
		OnCallback: func(topic string, _ []byte) { got1 = append(got1, topic) }})
	c2, _ := NewClient(ClientConfig{ClientID: "c2", Log: log2,
		OnCallback: func(topic string, _ []byte) { got2 = append(got2, topic) }})
	srv := NewServer(ServerConfig{ServerID: "srv"})

	up := true
	s1c := &harnessSender{up: &up}
	s1s := &harnessSender{up: &up}
	s2c := &harnessSender{up: &up}
	s2s := &harnessSender{up: &up}
	srv.OnConnect(s1s, 0)
	srv.OnConnect(s2s, 0)
	c1.OnConnect(s1c, 0)
	c2.OnConnect(s2c, 0)
	// Deliver the hellos.
	for _, f := range s1c.queue {
		srv.OnFrame(s1s, f, 0)
	}
	for _, f := range s2c.queue {
		srv.OnFrame(s2s, f, 0)
	}
	s1c.queue, s2c.queue = nil, nil

	n := srv.BroadcastCallback("c1", "invalidate", []byte("x"))
	if n != 1 {
		t.Fatalf("broadcast reached %d", n)
	}
	for _, f := range s2s.queue {
		c2.OnFrame(f, 0)
	}
	for _, f := range s1s.queue {
		c1.OnFrame(f, 0)
	}
	foundInvalidate := false
	for _, topic := range got2 {
		if topic == "invalidate" {
			foundInvalidate = true
		}
	}
	if !foundInvalidate {
		t.Errorf("c2 callbacks: %v", got2)
	}
	for _, topic := range got1 {
		if topic == "invalidate" {
			t.Error("broadcast echoed to origin")
		}
	}
	if srv.String() != "qrpc.Server(srv)" {
		t.Errorf("String = %q", srv.String())
	}
}

func TestPingPong(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.connect()
	// Server answers pings.
	h.server.OnFrame(h.sc, wire.Frame{Type: wire.FramePing}, 0)
	foundPong := false
	for _, f := range h.sc.queue {
		if f.Type == wire.FramePong {
			foundPong = true
		}
	}
	if !foundPong {
		t.Error("server did not pong")
	}
	h.settle()
	// Client answers pings and reports pongs.
	var pongs int
	h2 := newHarness(t, ClientConfig{OnPong: func(vtime.Time) { pongs++ }}, ServerConfig{})
	h2.connect()
	h2.client.OnFrame(wire.Frame{Type: wire.FramePing}, 0)
	found := false
	for _, f := range h2.cs.queue {
		if f.Type == wire.FramePong {
			found = true
		}
	}
	if !found {
		t.Error("client did not pong")
	}
	h2.client.OnFrame(wire.Frame{Type: wire.FramePong}, 0)
	if pongs != 1 {
		t.Errorf("pongs = %d", pongs)
	}
}

func TestMalformedFramesIgnored(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	h.server.Register("echo", echoHandler)
	h.connect()
	// Garbage payloads in every frame type must not panic or corrupt.
	for _, typ := range []byte{wire.FrameHello, wire.FrameRequest, wire.FrameAck, wire.FrameReply, wire.FrameCallback} {
		h.server.OnFrame(h.sc, wire.Frame{Type: typ, Payload: []byte{0xFF, 0x01}}, 0)
		h.client.OnFrame(wire.Frame{Type: typ, Payload: []byte{0xFF, 0x01}}, 0)
	}
	h.settle()
	p, _ := h.client.Enqueue("echo", []byte("still works"), PriorityNormal, 0)
	h.settle()
	if res, err, ok := p.Result(); !ok || err != nil || string(res) != "echo:still works" {
		t.Fatalf("engine wedged after garbage: %q %v %v", res, err, ok)
	}
}

func TestHelloFrameForConnectionless(t *testing.T) {
	h := newHarness(t, ClientConfig{}, ServerConfig{})
	f := h.client.Hello()
	if f.Type != wire.FrameHello {
		t.Fatalf("type %d", f.Type)
	}
	var m Hello
	if err := wire.Unmarshal(f.Payload, &m); err != nil {
		t.Fatal(err)
	}
	if m.ClientID != "client-1" || m.LowSeq == 0 {
		t.Errorf("hello %+v", m)
	}
	if h.client.ClientID() != "client-1" {
		t.Error("ClientID")
	}
}

func TestRemoteErrorStrings(t *testing.T) {
	e1 := &RemoteError{Status: StatusAppError, Message: "boom"}
	if !strings.Contains(e1.Error(), "boom") {
		t.Error(e1.Error())
	}
	e2 := &RemoteError{Status: StatusNoService, Message: "svc"}
	if !strings.Contains(e2.Error(), "no such service") {
		t.Error(e2.Error())
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	var w Welcome
	if err := wire.Unmarshal(wire.Marshal(&Welcome{ServerID: "s", HighSeq: 4}), &w); err != nil {
		t.Fatal(err)
	}
	if w.ServerID != "s" || w.HighSeq != 4 {
		t.Errorf("%+v", w)
	}
}

// TestHelloLowSeqPrunesAckedMap: the client's LowSeq advertisement in Hello
// is the server's license to forget idempotency state. Acked seqs below the
// advertised floor must leave session.acked (they can never be redelivered),
// and the floor must be recorded so late duplicates are still dropped.
func TestHelloLowSeqPrunesAckedMap(t *testing.T) {
	up := true
	snd := &harnessSender{up: &up}
	srv := NewServer(ServerConfig{ServerID: "srv"})
	srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
	srv.OnConnect(snd, 0)
	srv.OnFrame(snd, helloFrame("c1", 1), 0)
	for seq := uint64(1); seq <= 3; seq++ {
		srv.OnFrame(snd, requestFrame(seq, "echo", nil), 0)
	}
	srv.OnFrame(snd, ackFrame(1, 2), 0)
	sess := srv.Sessions()
	if sess[0].AckedPending != 2 || sess[0].CachedReplies != 1 {
		t.Fatalf("before prune: %+v", sess[0])
	}

	// Client advertises it will never resend below 3.
	srv.OnFrame(snd, helloFrame("c1", 3), 0)
	sess = srv.Sessions()
	if sess[0].AckedPending != 0 {
		t.Fatalf("acked map not pruned by LowSeq: %+v", sess[0])
	}
	if sess[0].LowSeq != 3 || sess[0].CachedReplies != 1 {
		t.Fatalf("after prune: %+v", sess[0])
	}

	// A stale duplicate below the floor is still dropped, not re-executed.
	snd.queue = nil
	srv.OnFrame(snd, requestFrame(1, "echo", nil), 0)
	if len(snd.queue) != 0 {
		t.Fatal("stale duplicate below LowSeq was answered")
	}
	if srv.Stats().Executed != 3 {
		t.Fatalf("Executed = %d, want 3", srv.Stats().Executed)
	}
}
