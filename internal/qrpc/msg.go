package qrpc

import (
	"fmt"

	"rover/internal/wire"
)

// Protocol messages. Each is the payload of one wire.Frame whose type tag
// is the corresponding wire.Frame* constant.

// Capability bits advertised in the Hello/Welcome exchange. Caps is an
// OPTIONAL trailing field: encoders omit it when zero (so a peer with
// nothing to advertise emits exactly the pre-capability wire format) and
// decoders read it only when bytes remain. That keeps both directions
// compatible with peers built before capabilities existed — an old
// decoder rejects trailing bytes, so a new encoder must never send any
// to a peer that has not proven it understands them. The server echoes
// capabilities only to clients that advertised some.
const (
	// CapCompressedBatch: the peer can decode wire.FrameBatchZ frames.
	CapCompressedBatch uint64 = 1 << 0
)

// Hello opens (or resumes) a session: client -> server, first frame after
// every connect, and the header of every mail-transport batch.
type Hello struct {
	ClientID string
	// Nonce is a client-chosen random value the Proof is computed over.
	// (A server-issued challenge would add a round trip per connect —
	// costly at 2.4 Kbit/s; the paper's threat model is authenticating
	// clients to a trusted server, not defeating network-level replay.)
	Nonce []byte
	// Proof is auth.Prove(key, ClientID, Nonce); empty when the server
	// runs without an auth registry.
	Proof []byte
	// LowSeq is the lowest unacknowledged sequence number in the client's
	// stable log; the server may discard idempotency state below it.
	LowSeq uint64
	// Caps advertises optional protocol capabilities (Cap* bits). Zero is
	// omitted from the encoding; see the Cap constants.
	Caps uint64
}

// MarshalWire implements wire.Marshaler.
func (m *Hello) MarshalWire(b *wire.Buffer) {
	b.PutString(m.ClientID)
	b.PutBytes(m.Nonce)
	b.PutBytes(m.Proof)
	b.PutUvarint(m.LowSeq)
	if m.Caps != 0 {
		b.PutUvarint(m.Caps)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Hello) UnmarshalWire(r *wire.Reader) error {
	m.ClientID = r.String()
	m.Nonce = r.Bytes()
	m.Proof = r.Bytes()
	m.LowSeq = r.Uvarint()
	m.Caps = 0
	if r.Err() == nil && r.Remaining() > 0 {
		m.Caps = r.Uvarint()
	}
	return r.Err()
}

// Welcome accepts a session: server -> client.
type Welcome struct {
	ServerID string
	// HighSeq is the highest sequence number the server has executed for
	// this client (diagnostic; redelivery correctness does not depend on
	// it).
	HighSeq uint64
	// Caps is the intersection of the client's advertised capabilities and
	// the server's own. Zero is omitted from the encoding, and a server
	// never sends a nonzero Caps to a client whose Hello carried none.
	Caps uint64
}

// MarshalWire implements wire.Marshaler.
func (m *Welcome) MarshalWire(b *wire.Buffer) {
	b.PutString(m.ServerID)
	b.PutUvarint(m.HighSeq)
	if m.Caps != 0 {
		b.PutUvarint(m.Caps)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Welcome) UnmarshalWire(r *wire.Reader) error {
	m.ServerID = r.String()
	m.HighSeq = r.Uvarint()
	m.Caps = 0
	if r.Err() == nil && r.Remaining() > 0 {
		m.Caps = r.Uvarint()
	}
	return r.Err()
}

// Request is one queued remote procedure call.
type Request struct {
	Seq      uint64
	Priority Priority
	Service  string // dispatch key at the server ("rover.import", ...)
	Args     []byte // service-specific payload
}

// MarshalWire implements wire.Marshaler.
func (m *Request) MarshalWire(b *wire.Buffer) {
	b.PutUvarint(m.Seq)
	b.PutByte(byte(m.Priority))
	b.PutString(m.Service)
	b.PutBytes(m.Args)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Request) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Priority = Priority(r.Byte())
	m.Service = r.String()
	m.Args = r.Bytes()
	return r.Err()
}

// Reply answers one Request.
type Reply struct {
	Seq    uint64
	Status Status
	Result []byte // valid when Status == StatusOK
	ErrMsg string // valid otherwise
}

// MarshalWire implements wire.Marshaler.
func (m *Reply) MarshalWire(b *wire.Buffer) {
	b.PutUvarint(m.Seq)
	b.PutByte(byte(m.Status))
	b.PutBytes(m.Result)
	b.PutString(m.ErrMsg)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Reply) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Status = Status(r.Byte())
	m.Result = r.Bytes()
	m.ErrMsg = r.String()
	return r.Err()
}

// Ack tells the server which replies arrived, so it can discard its
// idempotency state for them.
type Ack struct {
	Seqs []uint64
}

// MarshalWire implements wire.Marshaler.
func (m *Ack) MarshalWire(b *wire.Buffer) {
	b.PutUvarintSlice(m.Seqs)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Ack) UnmarshalWire(r *wire.Reader) error {
	m.Seqs = r.UvarintSlice()
	return r.Err()
}

// Callback is a server-initiated notification (object-change callbacks for
// cache consistency).
type Callback struct {
	Topic   string
	Payload []byte
}

// MarshalWire implements wire.Marshaler.
func (m *Callback) MarshalWire(b *wire.Buffer) {
	b.PutString(m.Topic)
	b.PutBytes(m.Payload)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Callback) UnmarshalWire(r *wire.Reader) error {
	m.Topic = r.String()
	m.Payload = r.Bytes()
	return r.Err()
}

// Stable-log records. Two kinds survive a crash:
//
//   - request records ('Q'): the queued request itself;
//   - meta records ('M'): a sequence floor. Sequence numbers must never be
//     reused across client incarnations — the server's at-most-once reply
//     cache is keyed by them — and the request records alone cannot
//     guarantee that (a crash with an empty queue would reset the counter).
//     The client therefore reserves sequence numbers in chunks, persisting
//     the reservation before using it.
const (
	recRequest byte = 'Q'
	recMeta    byte = 'M'
)

// seqReserveChunk is how many sequence numbers each meta record reserves.
const seqReserveChunk = 1024

func encodeRequestRecord(req *Request) []byte {
	var b wire.Buffer
	b.PutByte(recRequest)
	req.MarshalWire(&b)
	return b.Bytes()
}

func encodeMetaRecord(floor uint64) []byte {
	var b wire.Buffer
	b.PutByte(recMeta)
	b.PutUvarint(floor)
	return b.Bytes()
}

// decodeRecord parses a stable-log record: exactly one of req or meta
// applies, per isMeta.
func decodeRecord(p []byte) (req *Request, floor uint64, isMeta bool, err error) {
	r := wire.NewReader(p)
	switch r.Byte() {
	case recRequest:
		var rq Request
		if err := rq.UnmarshalWire(r); err != nil {
			return nil, 0, false, fmt.Errorf("qrpc: corrupt request record: %w", err)
		}
		if r.Remaining() != 0 {
			return nil, 0, false, fmt.Errorf("qrpc: trailing bytes in request record")
		}
		return &rq, 0, false, nil
	case recMeta:
		floor := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, 0, false, fmt.Errorf("qrpc: corrupt meta record: %w", err)
		}
		return nil, floor, true, nil
	default:
		return nil, 0, false, fmt.Errorf("qrpc: unknown log record kind")
	}
}
