package qrpc

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rover/internal/stable"
	"rover/internal/wire"
)

// newShardLogs returns n fresh MemLogs as a Journals slice.
func newShardLogs(n int) []stable.Log {
	logs := make([]stable.Log, n)
	for i := range logs {
		logs[i] = stable.NewMemLog(stable.Options{})
	}
	return logs
}

// clientsAcrossShards returns clientIDs chosen so that every one of the n
// shards is some client's home bucket (FNV-1a is fixed, so this search is
// deterministic).
func clientsAcrossShards(t *testing.T, srv *Server, n int) []string {
	t.Helper()
	byShard := make(map[int]string, n)
	for i := 0; len(byShard) < n && i < 100*n; i++ {
		id := fmt.Sprintf("shard-client-%d", i)
		idx := srv.shardIndexFor(id)
		if _, ok := byShard[idx]; !ok {
			byShard[idx] = id
		}
	}
	if len(byShard) < n {
		t.Fatalf("could not find clients covering all %d shards", n)
	}
	ids := make([]string, n)
	for idx, id := range byShard {
		ids[idx] = id
	}
	return ids
}

// TestShardedJournalRecoveryExactlyOnce rebuilds a server from a 4-bucket
// journal and checks that every session's redelivered requests are answered
// from the recovered reply caches — no re-execution anywhere, regardless of
// which bucket a session hashed to. The first incarnation runs pooled so
// the batched (pipelined group commit) execute path is the one journaling.
func TestShardedJournalRecoveryExactlyOnce(t *testing.T) {
	logs := newShardLogs(4)
	up := true

	var mu chanMutex
	execs := map[string]map[uint64]int{}
	handler := func(clientID string, req Request) ([]byte, error) {
		mu.Lock()
		if execs[clientID] == nil {
			execs[clientID] = map[uint64]int{}
		}
		execs[clientID][req.Seq]++
		mu.Unlock()
		return append([]byte("r:"), req.Args...), nil
	}

	srv1 := NewServer(ServerConfig{ServerID: "srv", Journals: logs, Workers: 4})
	srv1.Register("echo", handler)
	clients := clientsAcrossShards(t, srv1, 4)
	senders := make([]*harnessSender, len(clients))
	for i, id := range clients {
		senders[i] = &harnessSender{up: &up}
		srv1.OnConnect(senders[i], 0)
		srv1.OnFrame(senders[i], helloFrame(id, 1), 0)
		srv1.OnFrame(senders[i], requestFrame(1, "echo", []byte(id+"-a")), 0)
		srv1.OnFrame(senders[i], requestFrame(2, "echo", []byte(id+"-b")), 0)
	}
	srv1.Quiesce()
	srv1.Close()

	srv2 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv2.Register("echo", handler)
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	st := srv2.Stats()
	if st.RecoveredSessions != 4 || st.RecoveredReplies != 8 {
		t.Fatalf("recovered sessions=%d replies=%d, want 4/8", st.RecoveredSessions, st.RecoveredReplies)
	}
	for i, id := range clients {
		snd := &harnessSender{up: &up}
		srv2.OnConnect(snd, 0)
		srv2.OnFrame(snd, helloFrame(id, 1), 0)
		snd.queue = nil
		srv2.OnFrame(snd, requestFrame(1, "echo", []byte(id+"-a")), 0)
		srv2.OnFrame(snd, requestFrame(2, "echo", []byte(id+"-b")), 0)
		reps := drainReplies(t, snd)
		if len(reps) != 2 {
			t.Fatalf("client %d: redelivery got %d replies, want 2", i, len(reps))
		}
		for _, rep := range reps {
			want := "r:" + id + map[uint64]string{1: "-a", 2: "-b"}[rep.Seq]
			if rep.Status != StatusOK || string(rep.Result) != want {
				t.Errorf("client %d recovered reply %d = %q, want %q", i, rep.Seq, rep.Result, want)
			}
		}
		mu.Lock()
		for seq, c := range execs[id] {
			if c != 1 {
				t.Errorf("client %d seq %d executed %d times, want 1", i, seq, c)
			}
		}
		mu.Unlock()
	}
	srv2.Close()
}

// chanMutex is a tiny mutex built on a channel so this file does not need
// to import sync just for the handler's exec counters.
type chanMutex struct{ ch chan struct{} }

func (m *chanMutex) Lock() {
	if m.ch == nil {
		m.ch = make(chan struct{}, 1)
	}
	m.ch <- struct{}{}
}
func (m *chanMutex) Unlock() { <-m.ch }

// TestShardedJournalTornTailIsolation tears the trailing record of ONE
// journal bucket and verifies the damage is confined: sessions homed in
// other buckets recover every reply, and the torn bucket's session loses
// only its truncated suffix (which re-executes on redelivery — the
// documented torn-tail contract), with the server healthy throughout.
func TestShardedJournalTornTailIsolation(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	paths := make([]string, shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("journal.s%d", i))
	}
	open := func() []stable.Log {
		logs := make([]stable.Log, shards)
		for i, p := range paths {
			fl, err := stable.OpenFileLog(p, stable.Options{})
			if err != nil {
				t.Fatalf("open shard %d: %v", i, err)
			}
			logs[i] = fl
		}
		return logs
	}
	closeAll := func(logs []stable.Log) {
		for _, l := range logs {
			l.Close()
		}
	}

	execs := map[string]int{}
	handler := func(clientID string, req Request) ([]byte, error) {
		execs[clientID]++
		return req.Args, nil
	}

	logs := open()
	srv1 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv1.Register("echo", handler)
	clients := clientsAcrossShards(t, srv1, shards)
	up := true
	for _, id := range clients {
		snd := &harnessSender{up: &up}
		srv1.OnConnect(snd, 0)
		srv1.OnFrame(snd, helloFrame(id, 1), 0)
		srv1.OnFrame(snd, requestFrame(1, "echo", []byte(id)), 0)
	}
	victim := srv1.shardIndexFor(clients[0])
	srv1.Close()
	closeAll(logs)

	// Tear the victim bucket: append a prefix of a valid record.
	data, err := os.ReadFile(paths[victim])
	if err != nil || len(data) < 8 {
		t.Fatalf("read victim shard: %v (%d bytes)", err, len(data))
	}
	f, err := os.OpenFile(paths[victim], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data[:5])
	f.Close()

	logs = open()
	defer closeAll(logs)
	srv2 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv2.Register("echo", handler)
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("torn tail in one bucket poisoned the server: %v", err)
	}
	defer srv2.Close()
	// Every session recovered (the torn suffix was an incomplete record, so
	// all fully-written replies survive), and redelivery replays from cache.
	if st := srv2.Stats(); st.RecoveredSessions != shards {
		t.Fatalf("recovered %d sessions, want %d", st.RecoveredSessions, shards)
	}
	for _, id := range clients {
		snd := &harnessSender{up: &up}
		srv2.OnConnect(snd, 0)
		srv2.OnFrame(snd, helloFrame(id, 1), 0)
		snd.queue = nil
		srv2.OnFrame(snd, requestFrame(1, "echo", []byte(id)), 0)
		if reps := drainReplies(t, snd); len(reps) != 1 {
			t.Fatalf("client %s: got %d replies, want 1", id, len(reps))
		}
		if execs[id] != 1 {
			t.Errorf("client %s executed %d times across the torn-tail rebuild, want 1", id, execs[id])
		}
	}
}

// TestJournalRecoverReshardOnGrowth grows a single-bucket journal to four
// buckets across a restart: recovery must migrate every misplaced session
// to its home bucket (counted in JournalReshards), keep exactly-once
// intact, and converge — a second 4-shard restart reshards nothing.
func TestJournalRecoverReshardOnGrowth(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "journal.s0"),
		filepath.Join(dir, "journal.s1"),
		filepath.Join(dir, "journal.s2"),
		filepath.Join(dir, "journal.s3"),
	}
	open := func(n int) []stable.Log {
		logs := make([]stable.Log, n)
		for i := 0; i < n; i++ {
			fl, err := stable.OpenFileLog(paths[i], stable.Options{})
			if err != nil {
				t.Fatalf("open shard %d: %v", i, err)
			}
			logs[i] = fl
		}
		return logs
	}
	closeAll := func(logs []stable.Log) {
		for _, l := range logs {
			l.Close()
		}
	}

	execs := map[string]int{}
	handler := func(clientID string, req Request) ([]byte, error) {
		execs[clientID]++
		return req.Args, nil
	}

	// Era 1: everything lands in the single bucket.
	logs := open(1)
	srv1 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv1.Register("echo", handler)
	probe := NewServer(ServerConfig{ServerID: "probe", Journals: newShardLogs(4)})
	clients := clientsAcrossShards(t, probe, 4) // covers all four FUTURE buckets
	probe.Close()
	up := true
	for _, id := range clients {
		snd := &harnessSender{up: &up}
		srv1.OnConnect(snd, 0)
		srv1.OnFrame(snd, helloFrame(id, 1), 0)
		srv1.OnFrame(snd, requestFrame(1, "echo", []byte(id)), 0)
	}
	srv1.Close()
	closeAll(logs)

	// Era 2: reopen as four buckets — recovery reshards the three sessions
	// whose home is no longer bucket 0.
	logs = open(4)
	srv2 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	srv2.Register("echo", handler)
	if err := srv2.JournalError(); err != nil {
		t.Fatalf("reshard recovery failed: %v", err)
	}
	st := srv2.Stats()
	if st.RecoveredSessions != 4 {
		t.Fatalf("recovered %d sessions, want 4", st.RecoveredSessions)
	}
	if st.JournalReshards != 3 {
		t.Fatalf("resharded %d sessions, want 3 (all but the one homed in bucket 0)", st.JournalReshards)
	}
	for _, id := range clients {
		snd := &harnessSender{up: &up}
		srv2.OnConnect(snd, 0)
		srv2.OnFrame(snd, helloFrame(id, 1), 0)
		snd.queue = nil
		srv2.OnFrame(snd, requestFrame(1, "echo", []byte(id)), 0)
		if reps := drainReplies(t, snd); len(reps) != 1 {
			t.Fatalf("client %s: got %d replies after reshard, want 1", id, len(reps))
		}
		if execs[id] != 1 {
			t.Errorf("client %s executed %d times across the reshard, want 1", id, execs[id])
		}
	}
	srv2.Close()
	closeAll(logs)

	// Era 3: the reshard converged — reopening at four buckets moves nothing.
	logs = open(4)
	defer closeAll(logs)
	srv3 := NewServer(ServerConfig{ServerID: "srv", Journals: logs})
	defer srv3.Close()
	if err := srv3.JournalError(); err != nil {
		t.Fatalf("post-reshard recovery failed: %v", err)
	}
	st = srv3.Stats()
	if st.RecoveredSessions != 4 || st.JournalReshards != 0 {
		t.Fatalf("after converged reshard: sessions=%d reshards=%d, want 4/0", st.RecoveredSessions, st.JournalReshards)
	}
}

// TestAdmissionControlRefusesNewSessions checks the high-water mark: past
// MaxSessions a NEW clientID's Hello gets FrameBusy and no session, while
// an ESTABLISHED session re-handshakes freely at the mark.
func TestAdmissionControlRefusesNewSessions(t *testing.T) {
	srv := NewServer(ServerConfig{ServerID: "srv", MaxSessions: 2})
	defer srv.Close()
	srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
	up := true

	hello := func(id string) *harnessSender {
		snd := &harnessSender{up: &up}
		srv.OnConnect(snd, 0)
		srv.OnFrame(snd, helloFrame(id, 1), 0)
		return snd
	}
	busyCount := func(snd *harnessSender) int {
		n := 0
		for _, f := range snd.queue {
			if f.Type == wire.FrameBusy {
				n++
			}
		}
		return n
	}

	a := hello("client-a")
	b := hello("client-b")
	if busyCount(a) != 0 || busyCount(b) != 0 {
		t.Fatalf("established sessions refused: a=%d b=%d busy frames", busyCount(a), busyCount(b))
	}
	if n := srv.SessionCount(); n != 2 {
		t.Fatalf("sessions = %d, want 2", n)
	}

	c := hello("client-c")
	if busyCount(c) != 1 {
		t.Fatalf("new session past the mark got %d busy frames, want 1", busyCount(c))
	}
	if n := srv.SessionCount(); n != 2 {
		t.Fatalf("refused session was created anyway: sessions = %d", n)
	}
	if got := srv.Stats().SessionsRefused; got != 1 {
		t.Fatalf("SessionsRefused = %d, want 1", got)
	}
	// The refused connection stays unauthenticated: its requests drop.
	c.queue = nil
	srv.OnFrame(c, requestFrame(1, "echo", []byte("x")), 0)
	if reps := drainReplies(t, c); len(reps) != 0 {
		t.Fatalf("refused session got %d replies", len(reps))
	}

	// An established session reconnecting at the high-water mark is always
	// re-admitted — the mark sheds NEW work, never strands accepted work.
	a2 := hello("client-a")
	if busyCount(a2) != 0 {
		t.Fatalf("established session re-handshake refused at the mark")
	}
	a2.queue = nil
	srv.OnFrame(a2, requestFrame(1, "echo", []byte("y")), 0)
	if reps := drainReplies(t, a2); len(reps) != 1 || string(reps[0].Result) != "y" {
		t.Fatalf("re-admitted session replies = %v", reps)
	}
}

// TestSessionBudgetBackpressure fills a session's unacked-reply budget and
// checks that NEW requests are dropped (BudgetRefused) while cached replays
// still serve, and that acks release the budget.
func TestSessionBudgetBackpressure(t *testing.T) {
	// replyApproxSize = 16 + len(result); 8-byte payloads cost 24 each, so
	// a 48-byte budget admits two replies and refuses the third request.
	srv := NewServer(ServerConfig{ServerID: "srv", SessionBudgetBytes: 48})
	defer srv.Close()
	srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
	up := true
	snd := &harnessSender{up: &up}
	srv.OnConnect(snd, 0)
	srv.OnFrame(snd, helloFrame("budget-client", 1), 0)

	payload := []byte("8bytes!!")
	srv.OnFrame(snd, requestFrame(1, "echo", payload), 0)
	srv.OnFrame(snd, requestFrame(2, "echo", payload), 0)
	if reps := drainReplies(t, snd); len(reps) != 2 {
		t.Fatalf("got %d replies within budget, want 2", len(reps))
	}
	srv.OnFrame(snd, requestFrame(3, "echo", payload), 0)
	if reps := drainReplies(t, snd); len(reps) != 0 {
		t.Fatalf("request past budget got %d replies, want 0 (dropped)", len(reps))
	}
	if got := srv.Stats().BudgetRefused; got != 1 {
		t.Fatalf("BudgetRefused = %d, want 1", got)
	}
	// Cached replies replay even at the budget — refusing them would break
	// at-most-once by forcing a re-execution.
	srv.OnFrame(snd, requestFrame(1, "echo", payload), 0)
	if reps := drainReplies(t, snd); len(reps) != 1 || reps[0].Seq != 1 {
		t.Fatalf("replay at budget = %v", reps)
	}
	// Acks free the budget; the dropped request's redelivery now executes.
	srv.OnFrame(snd, ackFrame(1, 2), 0)
	srv.OnFrame(snd, requestFrame(3, "echo", payload), 0)
	reps := drainReplies(t, snd)
	if len(reps) != 1 || reps[0].Seq != 3 || string(reps[0].Result) != string(payload) {
		t.Fatalf("post-ack redelivery = %v", reps)
	}
}

// TestReplyCacheServesEncodedReplays checks the encoded-reply cache: a
// redelivered request replays the encoding marshaled at execution time
// (hit), a disabled cache re-marshals every replay (miss), and a byte
// budget evicts LRU entries.
func TestReplyCacheServesEncodedReplays(t *testing.T) {
	up := true
	t.Run("hit", func(t *testing.T) {
		srv := NewServer(ServerConfig{ServerID: "srv"})
		defer srv.Close()
		srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
		snd := &harnessSender{up: &up}
		srv.OnConnect(snd, 0)
		srv.OnFrame(snd, helloFrame("c", 1), 0)
		srv.OnFrame(snd, requestFrame(1, "echo", []byte("x")), 0)
		snd.queue = nil
		srv.OnFrame(snd, requestFrame(1, "echo", []byte("x")), 0)
		if reps := drainReplies(t, snd); len(reps) != 1 || string(reps[0].Result) != "x" {
			t.Fatalf("replay = %v", reps)
		}
		st := srv.Stats()
		if st.ReplyCacheHits != 1 || st.ReplyCacheMisses != 0 {
			t.Fatalf("hits=%d misses=%d, want 1/0", st.ReplyCacheHits, st.ReplyCacheMisses)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		srv := NewServer(ServerConfig{ServerID: "srv", ReplyCacheBytes: -1})
		defer srv.Close()
		srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
		snd := &harnessSender{up: &up}
		srv.OnConnect(snd, 0)
		srv.OnFrame(snd, helloFrame("c", 1), 0)
		srv.OnFrame(snd, requestFrame(1, "echo", []byte("x")), 0)
		snd.queue = nil
		srv.OnFrame(snd, requestFrame(1, "echo", []byte("x")), 0)
		if reps := drainReplies(t, snd); len(reps) != 1 || string(reps[0].Result) != "x" {
			t.Fatalf("replay = %v", reps)
		}
		st := srv.Stats()
		if st.ReplyCacheHits != 0 || st.ReplyCacheMisses != 1 {
			t.Fatalf("hits=%d misses=%d, want 0/1", st.ReplyCacheHits, st.ReplyCacheMisses)
		}
	})
	t.Run("eviction", func(t *testing.T) {
		// A cache barely larger than one encoded reply: the second execute
		// evicts the first, whose replay then misses and repopulates.
		srv := NewServer(ServerConfig{ServerID: "srv", ReplyCacheBytes: 40})
		defer srv.Close()
		srv.Register("echo", func(_ string, req Request) ([]byte, error) { return req.Args, nil })
		snd := &harnessSender{up: &up}
		srv.OnConnect(snd, 0)
		srv.OnFrame(snd, helloFrame("c", 1), 0)
		srv.OnFrame(snd, requestFrame(1, "echo", []byte(strings.Repeat("a", 24))), 0)
		srv.OnFrame(snd, requestFrame(2, "echo", []byte(strings.Repeat("b", 24))), 0)
		if st := srv.Stats(); st.ReplyCacheEvictions == 0 {
			t.Fatalf("no evictions from a %d-byte cache after two ~30-byte replies", 40)
		}
		snd.queue = nil
		srv.OnFrame(snd, requestFrame(1, "echo", []byte(strings.Repeat("a", 24))), 0)
		reps := drainReplies(t, snd)
		if len(reps) != 1 || string(reps[0].Result) != strings.Repeat("a", 24) {
			t.Fatalf("post-eviction replay = %v", reps)
		}
		if st := srv.Stats(); st.ReplyCacheMisses == 0 {
			t.Fatalf("evicted reply replayed without a cache miss")
		}
	})
}
