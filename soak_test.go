package rover_test

import (
	"fmt"
	"testing"
	"time"

	"rover"
)

// TestTCPSoakWithRestarts runs three clients over real TCP against one
// server whose listener is killed and restarted mid-run. Every booking
// must commit exactly once despite the interruptions — the deployment
// analog of the simulator's outage tests.
func TestTCPSoakWithRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	srv, err := rover.NewServer(rover.ServerOptions{ServerID: "soak"})
	if err != nil {
		t.Fatal(err)
	}
	obj := rover.NewObject(rover.MustParseURN("urn:rover:soak/slots"), "slots")
	obj.Code = `
		proc book {slot who} {
			if {[state exists $slot]} { error "taken" }
			state set $slot $who
		}
	`
	if err := srv.Seed(obj); err != nil {
		t.Fatal(err)
	}
	ln, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()

	const clients = 3
	const perClient = 30
	clis := make([]*rover.Client, clients)
	for i := range clis {
		cli, err := rover.NewClient(rover.ClientOptions{ClientID: fmt.Sprintf("soak-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		cli.ConnectTCP(addr)
		clis[i] = cli
	}
	ctx := t.Context()
	for _, cli := range clis {
		if _, err := cli.ImportWait(ctx, obj.URN); err != nil {
			t.Fatal(err)
		}
	}

	// Book unique slots from every client while the server restarts twice.
	done := make(chan error, clients)
	for ci, cli := range clis {
		go func(ci int, cli *rover.Client) {
			for j := 0; j < perClient; j++ {
				slot := fmt.Sprintf("c%d-s%d", ci, j)
				if _, err := cli.Invoke(obj.URN, "book", slot, fmt.Sprintf("soak-%d", ci)); err != nil {
					done <- fmt.Errorf("client %d invoke %d: %w", ci, j, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			done <- nil
		}(ci, cli)
	}
	// Two listener restarts while bookings flow.
	for r := 0; r < 2; r++ {
		time.Sleep(20 * time.Millisecond)
		ln.Close()
		time.Sleep(20 * time.Millisecond)
		ln, err = srv.ListenTCP(addr)
		if err != nil {
			t.Fatalf("restart %d: %v", r, err)
		}
	}
	for range clis {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Drain: all tentative work committed.
	deadline := time.Now().Add(15 * time.Second)
	for _, cli := range clis {
		for {
			st := cli.Status()
			if !cli.Tentative(obj.URN) && st.Queued == 0 && st.AwaitingReply == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("drain stalled: %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	got, err := srv.Store().Get(obj.URN)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for range got.State {
		count++
	}
	if count != clients*perClient {
		t.Fatalf("server has %d slots, want %d", count, clients*perClient)
	}
	if len(srv.Store().Conflicts()) != 0 {
		t.Errorf("unexpected conflicts: %+v", srv.Store().Conflicts())
	}
	ln.Close()
}
