// Package rover is a Go implementation of the Rover toolkit for mobile
// information access (Joseph, deLespinasse, Tauber, Gifford, Kaashoek —
// SOSP 1995).
//
// Rover combines two mechanisms for building "roving" applications that
// keep working across disconnection and slow links:
//
//   - Relocatable Dynamic Objects (RDOs): named objects carrying
//     interpreted code and state, importable into a client cache and
//     exportable back to their home server. See Object and the rdo
//     documentation.
//   - Queued Remote Procedure Call (QRPC): non-blocking RPC over a stable
//     operation log, drained by priority when connectivity exists, with
//     at-most-once execution across disconnections and crashes.
//
// # Quick start
//
//	srv, _ := rover.NewServer(rover.ServerOptions{ServerID: "home"})
//	obj := rover.NewObject(rover.MustParseURN("urn:rover:home/notes"), "notes")
//	obj.Code = `proc add {line} { state set [state size] $line }`
//	srv.Seed(obj)
//
//	cli, _ := rover.NewClient(rover.ClientOptions{ClientID: "laptop"})
//	link := cli.ConnectPipe(srv)         // or cli.ConnectTCP(addr)
//	link.SetConnected(true)
//
//	cli.ImportWait(ctx, obj.URN)         // fill the cache
//	cli.Invoke(obj.URN, "add", "hello")  // local, tentative, queued
//	// disconnect, keep working, reconnect — the queue drains itself.
//
// The subpackages are exposed for advanced composition; this package
// bundles them the way the paper's applications used the toolkit.
package rover

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rover/internal/access"
	"rover/internal/auth"
	"rover/internal/proto"
	"rover/internal/qrpc"
	"rover/internal/rdo"
	"rover/internal/repl"
	"rover/internal/resolve"
	"rover/internal/server"
	"rover/internal/session"
	"rover/internal/stable"
	"rover/internal/store"
	"rover/internal/store/disk"
	"rover/internal/transport"
	"rover/internal/urn"
	"rover/internal/vtime"
)

// Future is the toolkit's typed promise: wait on it, poll it, or register
// a callback.
type Future[T any] = access.Future[T]

// NewFuture returns an incomplete future for application-level
// composition.
func NewFuture[T any]() *Future[T] { return access.NewFuture[T]() }

// Core re-exported types. The toolkit's working vocabulary: names,
// objects, invocations, priorities, futures.
type (
	// URN names an object independently of its current server.
	URN = urn.URN
	// Object is a relocatable dynamic object.
	Object = rdo.Object
	// Invocation is one queued method call (the unit of operation
	// shipping).
	Invocation = rdo.Invocation
	// Priority orders queued requests; higher drains first.
	Priority = qrpc.Priority
	// Guarantee selects Bayou session guarantees.
	Guarantee = session.Guarantee
	// ImportOptions tune one import.
	ImportOptions = access.ImportOptions
	// ExportResult reports an export outcome.
	ExportResult = access.ExportResult
	// InvokeResult reports a server-side invocation outcome.
	InvokeResult = access.InvokeResult
	// Status is the user-notification snapshot.
	Status = access.Status
	// Outcome classifies export results.
	Outcome = proto.Outcome
	// ListEntry is one row of a directory listing.
	ListEntry = proto.ListEntry
	// StatReply describes a remote object.
	StatReply = proto.StatReply
	// ConflictEntry is a manual-repair queue item.
	ConflictEntry = proto.ConflictEntry
	// Resolver merges or rejects conflicting operations.
	Resolver = resolve.Resolver
	// TentativePolicy selects tolerance for tentative cache entries.
	TentativePolicy = access.TentativePolicy
)

// Re-exported priority levels.
const (
	PriorityLow        = qrpc.PriorityLow
	PriorityNormal     = qrpc.PriorityNormal
	PriorityHigh       = qrpc.PriorityHigh
	PriorityForeground = qrpc.PriorityForeground
)

// Re-exported session guarantees.
const (
	ReadYourWrites    = session.ReadYourWrites
	MonotonicReads    = session.MonotonicReads
	WritesFollowReads = session.WritesFollowReads
	MonotonicWrites   = session.MonotonicWrites
	AllGuarantees     = session.All
	NoGuarantees      = session.None
)

// Re-exported tentative policies and export outcomes.
const (
	AcceptTentative = access.AcceptTentative
	RejectTentative = access.RejectTentative

	OutcomeCommitted = proto.OutcomeCommitted
	OutcomeResolved  = proto.OutcomeResolved
	OutcomeConflict  = proto.OutcomeConflict
)

// ParseURN parses "urn:rover:<authority>/<path>".
func ParseURN(s string) (URN, error) { return urn.Parse(s) }

// MustParseURN is ParseURN for known-good literals; it panics on error.
func MustParseURN(s string) URN { return urn.MustParse(s) }

// NewURN builds a URN from components.
func NewURN(authority, path string) (URN, error) { return urn.New(authority, path) }

// NewObject returns an empty RDO of the given type.
func NewObject(u URN, typeName string) *Object { return rdo.New(u, typeName) }

// ReplayResolver is the default optimistic resolver (re-run the operations
// on current state; the object's methods police invariants).
var ReplayResolver Resolver = resolve.Replay

// RejectResolver reflects every conflict to the repair queue.
var RejectResolver Resolver = resolve.Reject

// ClientOptions configure a Rover client.
type ClientOptions struct {
	// ClientID identifies the client to servers. Required.
	ClientID string
	// LogPath is the stable operation log file; empty selects an
	// in-memory log (no crash recovery — tests and simulations).
	LogPath string
	// ModeledFlushCost gives the in-memory log a virtual-time flush cost,
	// so simulations charge the stable write to the QRPC critical path as
	// the paper's prototype does. Ignored when LogPath is set.
	ModeledFlushCost time.Duration
	// KeyHex is the hex shared secret for server authentication; empty
	// disables client-side proofs.
	KeyHex string
	// CacheBytes bounds the object cache (<= 0 unbounded).
	CacheBytes int
	// Compress advertises the compressed-batch capability to servers;
	// frames are deflated only when the peer also supports it and the
	// compressed form is smaller on the wire.
	Compress bool
	// MaxPendingQRPC bounds the pending request queue (<= 0 unbounded):
	// past it, prefetches are shed; past twice it, every new request fails
	// fast with access.ErrShedLoad instead of growing the stable log while
	// the link or log is failing.
	MaxPendingQRPC int
	// Guarantees selects session guarantees; the zero value means "all
	// four". Set NoSessionGuarantees to disable them entirely.
	Guarantees Guarantee
	// NoSessionGuarantees turns session checking off.
	NoSessionGuarantees bool
	// NoAutoExport disables export-after-mutation; call Export/ExportAll
	// manually.
	NoAutoExport bool
	// Stdout receives `puts` output from local RDO code.
	Stdout io.Writer
	// OnConflict, OnInvalidate, OnStatus surface toolkit events to the UI.
	OnConflict   func(u URN, message string)
	OnInvalidate func(u URN, newVersion uint64)
	OnStatus     func(Status)
	// Clock overrides time (simulations); nil selects real time.
	Clock vtime.Clock
}

// Client is a Rover mobile host: QRPC engine + stable log + access
// manager, bound to at most one transport at a time.
type Client struct {
	engine *qrpc.Client
	am     *access.AccessManager
	log    stable.Log
	tr     transport.ClientTransport
	clock  vtime.Clock
}

// NewClient builds a client. Connect a transport with ConnectTCP or
// ConnectPipe before expecting remote completions; everything else (cache
// hits, local invocations, enqueueing) works disconnected.
func NewClient(opts ClientOptions) (*Client, error) {
	if opts.ClientID == "" {
		return nil, errors.New("rover: ClientID is required")
	}
	var log stable.Log
	if opts.LogPath != "" {
		fl, err := stable.OpenFileLog(opts.LogPath, stable.Options{})
		if err != nil {
			return nil, err
		}
		log = fl
	} else {
		log = stable.NewMemLog(stable.Options{FlushCost: opts.ModeledFlushCost})
	}
	var key auth.Key
	if opts.KeyHex != "" {
		k, err := auth.KeyFromHex(opts.KeyHex)
		if err != nil {
			return nil, err
		}
		key = k
	}
	c := &Client{log: log}
	guarantees := opts.Guarantees
	if guarantees == 0 && !opts.NoSessionGuarantees {
		guarantees = session.All
	}
	if opts.NoSessionGuarantees {
		guarantees = session.None
	}
	engine, err := qrpc.NewClient(qrpc.ClientConfig{
		ClientID: opts.ClientID,
		Key:      key,
		Log:      log,
		OnCallback: func(topic string, payload []byte) {
			if c.am != nil {
				c.am.HandleCallback(topic, payload)
			}
		},
		OnStatus: func(si qrpc.StatusInfo) {
			if opts.OnStatus != nil && c.am != nil {
				opts.OnStatus(c.am.Status())
			}
		},
		// A server past its admission high-water mark refuses our Hello
		// with FrameBusy; rotate to a backup of the address list, exactly
		// like a hard shed. Single-address transports ignore the rotate and
		// retry on the reconnect backoff.
		OnBusy: func() { c.failover() },
	})
	if err != nil {
		return nil, err
	}
	engine.SetCompression(opts.Compress)
	clock := opts.Clock
	if clock == nil {
		clock = vtime.NewRealClock()
	}
	c.clock = clock
	am, err := access.New(access.Config{
		Engine:     engine,
		Kick:       func() { c.kick() },
		Clock:      clock,
		CacheBytes: opts.CacheBytes,
		MaxPending: opts.MaxPendingQRPC,
		Guarantees: guarantees,
		AutoExport: !opts.NoAutoExport,
		Stdout:     opts.Stdout,
		OnOverload: func() { c.failover() },
		OnConflict: func(u URN, msg string) {
			if opts.OnConflict != nil {
				opts.OnConflict(u, msg)
			}
		},
		OnInvalidate: func(u URN, v uint64) {
			if opts.OnInvalidate != nil {
				opts.OnInvalidate(u, v)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	c.engine = engine
	c.am = am
	return c, nil
}

func (c *Client) kick() {
	if c.tr != nil {
		c.tr.Kick()
	}
}

// failover rotates a multi-address transport to its next server. Called
// when the current server refuses work (hard shed); transports without
// alternatives just ignore it.
func (c *Client) failover() {
	if r, ok := c.tr.(interface{ Rotate() }); ok {
		r.Rotate()
	}
}

// ConnectTCP maintains a connection to a TCP Rover server, reconnecting
// automatically. It returns immediately. The transport shares the client's
// clock so engine timestamps stay on one time base.
//
// Extra addresses name the backups of a replicated home pair: if a dial
// fails, or the current server sheds load, the client rotates to the next
// address and re-runs the QRPC handshake there — queued requests redeliver
// and tentative operations rebase against the survivor, so failover loses
// no accepted work.
func (c *Client) ConnectTCP(addr string, backups ...string) {
	addrs := append([]string{addr}, backups...)
	c.tr = transport.DialTCPMulti(addrs, c.engine, c.clock, transport.TCPClientOptions{})
}

// ConnectPipe joins this client to an in-process server and returns the
// pipe for connectivity scripting (SetConnected). Used by tests, examples,
// and demos.
func (c *Client) ConnectPipe(s *Server) *transport.Pipe {
	p := transport.NewPipe(c.engine, s.engine, c.clock)
	c.tr = p
	return p
}

// AttachTransport installs a custom transport (simulator harnesses).
func (c *Client) AttachTransport(tr transport.ClientTransport) { c.tr = tr }

// Engine exposes the QRPC engine (benchmark harnesses, custom adapters).
func (c *Client) Engine() *qrpc.Client { return c.engine }

// Access exposes the access manager for advanced use.
func (c *Client) Access() *access.AccessManager { return c.am }

// Import obtains an object (cache-first); see access.AccessManager.Import.
func (c *Client) Import(u URN, opts ImportOptions) *access.Future[*Object] {
	return c.am.Import(u, opts)
}

// ImportWait imports and blocks until the object is available.
func (c *Client) ImportWait(ctx context.Context, u URN) (*Object, error) {
	return c.am.Import(u, ImportOptions{}).Wait(ctx)
}

// Invoke executes a method on the locally cached RDO (tentative update).
func (c *Client) Invoke(u URN, method string, args ...string) (string, error) {
	return c.am.Invoke(u, method, args...)
}

// InvokeRemote executes a method at the object's home server.
func (c *Client) InvokeRemote(u URN, method string, args []string, p Priority) *access.Future[InvokeResult] {
	return c.am.InvokeRemote(u, method, args, p)
}

// InvokeBest picks the execution placement automatically: local when the
// object is cached, at the server otherwise.
func (c *Client) InvokeBest(u URN, method string, args []string, p Priority) *access.Future[InvokeResult] {
	return c.am.InvokeBest(u, method, args, p)
}

// Export ships queued tentative operations for one object.
func (c *Client) Export(u URN, p Priority) (*access.Future[ExportResult], error) {
	return c.am.Export(u, p)
}

// ExportAll exports every tentative object.
func (c *Client) ExportAll(p Priority) []*access.Future[ExportResult] {
	return c.am.ExportAll(p)
}

// Create registers a new object at its home server.
func (c *Client) Create(obj *Object, p Priority) *access.Future[uint64] {
	return c.am.Create(obj, p)
}

// CreateWait creates and blocks for the committed version.
func (c *Client) CreateWait(ctx context.Context, obj *Object) (uint64, error) {
	return c.am.Create(obj, PriorityNormal).Wait(ctx)
}

// Stat probes a remote object.
func (c *Client) Stat(u URN, p Priority) *access.Future[StatReply] {
	return c.am.Stat(u, p)
}

// List enumerates remote objects under a prefix.
func (c *Client) List(prefix URN, p Priority) *access.Future[[]ListEntry] {
	return c.am.List(prefix, p)
}

// Subscribe requests invalidation callbacks for objects under prefix.
func (c *Client) Subscribe(prefix URN, p Priority) *access.Future[struct{}] {
	return c.am.Subscribe(prefix, p)
}

// Prefetch warms the cache with one object at low priority.
func (c *Client) Prefetch(u URN) *access.Future[*Object] { return c.am.Prefetch(u) }

// PrefetchPrefix warms the cache with everything under prefix.
func (c *Client) PrefetchPrefix(prefix URN) *access.Future[int] {
	return c.am.PrefetchPrefix(prefix)
}

// Conflicts fetches the server's manual-repair queue.
func (c *Client) Conflicts(p Priority) *access.Future[[]ConflictEntry] {
	return c.am.Conflicts(p)
}

// Checkout requests an exclusive check-out lock on an object (pessimistic
// concurrency control for atomic-action-structured applications). See
// access.AccessManager.Checkout.
func (c *Client) Checkout(u URN, force bool, p Priority) *access.Future[access.CheckoutResult] {
	return c.am.Checkout(u, force, p)
}

// Checkin releases a check-out lock.
func (c *Client) Checkin(u URN, p Priority) *access.Future[struct{}] {
	return c.am.Checkin(u, p)
}

// Tentative reports whether u has uncommitted local operations.
func (c *Client) Tentative(u URN) bool { return c.am.Tentative(u) }

// Cached reports whether u is in the local cache.
func (c *Client) Cached(u URN) bool { return c.am.Cached(u) }

// Status returns the user-notification snapshot.
func (c *Client) Status() Status { return c.am.Status() }

// Close shuts down the transport, engine, and log. Queued requests stay
// on a file-backed log for the next incarnation.
func (c *Client) Close() error {
	var err error
	if c.tr != nil {
		err = c.tr.Close()
	}
	c.engine.Close()
	if lerr := c.log.Close(); err == nil {
		err = lerr
	}
	return err
}

// ServerOptions configure a Rover server.
type ServerOptions struct {
	// ServerID names the server in handshakes and logs.
	ServerID string
	// AuthKeys maps client IDs to hex keys; nil disables authentication.
	AuthKeys map[string]string
	// SnapshotPath, when set, is loaded at startup if present; call
	// SaveSnapshot to persist. Mutually exclusive with StoreDir, whose
	// segment already makes every commit durable.
	SnapshotPath string
	// StoreDir, when set, selects the disk-backed object store: committed
	// mutations are group-committed to an append-only segment in this
	// directory, a byte-bounded LRU keeps hot decoded objects resident, and
	// the population is recovered (torn tail truncated) at startup. Empty
	// selects the all-resident in-memory store.
	StoreDir string
	// StoreCacheBytes bounds the disk store's hot-object cache (zero = the
	// disk package default, 64 MiB). Ignored without StoreDir.
	StoreCacheBytes int64
	// StoreCompactEvery is the number of committed mutations between
	// compaction checks of the disk store's segment (zero = default).
	// Ignored without StoreDir.
	StoreCompactEvery int
	// InvokeBudget bounds server-side RDO execution steps per invocation.
	InvokeBudget int64
	// Workers sizes the request-execution worker pool: requests from one
	// client session execute serially in arrival order while sessions run
	// in parallel, and a batch of queued requests executes while the
	// transport reads the next frame. Zero selects the default: GOMAXPROCS
	// workers when GOMAXPROCS > 1, inline otherwise (a pool of one can
	// never run anything in parallel — it only adds a handoff context
	// switch per request). Negative forces inline execution on the
	// transport goroutine — required when the server is driven by a
	// single-threaded scheduler, as the virtual-time benchmark harness
	// does.
	Workers int
	// JournalPath, when set, opens a file-backed session journal at that
	// path. Every executed request's reply is write-ahead-logged before it
	// is released, and a restarted server replays the journal so
	// redelivered requests are answered from the recovered reply cache
	// instead of re-executing — exactly-once across server crashes, not
	// just client crashes. NewServer fails if a journal exists but cannot
	// be replayed (a server must not start with partial exactly-once
	// state). The journal is compacted in the background and closed by
	// Server.Close.
	JournalPath string
	// JournalShards shards the session journal across this many independent
	// files — JournalPath itself plus "<JournalPath>.s1" through
	// ".s<N-1>" — keyed by session hash, so each shard runs its own
	// group-commit fsync leader and up to N fsyncs overlap instead of every
	// worker convoying behind one. Zero or one selects the single-file
	// journal. The count may grow between restarts (recovery reshards
	// sessions into their new home files, durably, before serving) but must
	// never shrink: NewServer fails if shard files beyond the configured
	// count exist on disk, because their records would be silently unread.
	// Ignored unless JournalPath is set.
	JournalShards int
	// JournalCompactEvery overrides the journal compaction threshold per
	// shard (records appended since the shard's last snapshot); zero means
	// the default.
	JournalCompactEvery int
	// MaxSessions, when positive, is the admission high-water mark: Hellos
	// from clients the server has no session for are refused with a busy
	// frame once this many sessions exist (established sessions always
	// re-admit). Clients built by this package react by rotating to their
	// next backup address. Size it with headroom — a refused client retries
	// elsewhere or later, it does not queue here.
	MaxSessions int
	// SessionBudgetBytes, when positive, bounds the approximate bytes of
	// unacknowledged reply payloads one session may hold; at the budget,
	// new requests from that session are dropped (clients redeliver later)
	// until acks release cached replies. Backpressure, never loss.
	SessionBudgetBytes int
	// ReplyCacheBytes sizes the server-global cache of encoded replies
	// (zero = default 8 MiB, negative = disabled). See
	// qrpc.ServerConfig.ReplyCacheBytes.
	ReplyCacheBytes int
	// Autotune enables the adaptive cold-path controller: a periodic pass
	// that grows the disk store's hot-object cache while cold faults
	// dominate hits with the cache full (up to StoreCacheMaxBytes), and
	// grows the journal shard count online while the measured fsync latency
	// stays above AutotuneFsyncCost (up to JournalShardsMax). Both knobs are
	// grow-only: the controller never shrinks a cache or a shard count, and
	// every decision is observable via AutotuneReport. With Autotune set the
	// journal also reopens in adopt mode — shard files a previous
	// incarnation's growth created beyond JournalShards are adopted instead
	// of refused.
	Autotune bool
	// AutotuneInterval is the controller period (zero = 2s). Ignored
	// without Autotune.
	AutotuneInterval time.Duration
	// StoreCacheMaxBytes caps autotuned cache growth (zero = 8× the
	// starting budget). Ignored without Autotune.
	StoreCacheMaxBytes int64
	// JournalShardsMax caps autotuned shard growth (zero = the larger of 8
	// and the configured JournalShards). Ignored without Autotune.
	JournalShardsMax int
	// AutotuneFsyncCost is the measured per-shard fsync latency above which
	// the controller doubles the shard count (zero = 2ms). Ignored without
	// Autotune.
	AutotuneFsyncCost time.Duration
}

// Server is a Rover home server: QRPC engine + object store + conflict
// pipeline.
type Server struct {
	engine  *qrpc.Server
	srv     *server.Server
	backend store.Backend // closed by Close when StoreDir is set
	opts    ServerOptions

	// journalMu guards journals: autotuned shard growth appends new logs
	// while stats readers and Close walk the slice.
	journalMu sync.Mutex
	journals  []stable.Log // empty unless JournalPath is set; one per shard

	tuner *autotuner // nil unless Autotune

	replMu  sync.Mutex
	rep     *repl.Replicator
	replTr  transport.ClientTransport // transport toward the peer, if any
	replLog stable.Log
}

// NewServer builds a server.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.StoreDir != "" && opts.SnapshotPath != "" {
		return nil, errors.New("rover: StoreDir and SnapshotPath are mutually exclusive: the disk store is already durable")
	}
	var reg *auth.Registry
	if len(opts.AuthKeys) > 0 {
		reg = auth.NewRegistry()
		for id, hexKey := range opts.AuthKeys {
			k, err := auth.KeyFromHex(hexKey)
			if err != nil {
				return nil, fmt.Errorf("rover: key for %q: %w", id, err)
			}
			reg.Add(id, k)
		}
	}
	workers := opts.Workers
	if workers == 0 {
		if procs := runtime.GOMAXPROCS(0); procs > 1 {
			workers = procs
		}
	}
	if workers < 0 {
		workers = 0 // inline execution
	}
	var journals []stable.Log
	if opts.JournalPath != "" {
		var err error
		journals, err = openJournalShards(opts.JournalPath, opts.JournalShards, opts.Autotune)
		if err != nil {
			return nil, err
		}
	}
	var backend store.Backend
	if opts.StoreDir != "" {
		ds, err := disk.Open(disk.Options{
			Dir:          opts.StoreDir,
			CacheBytes:   opts.StoreCacheBytes,
			CompactEvery: opts.StoreCompactEvery,
		})
		if err != nil {
			for _, jl := range journals {
				jl.Close()
			}
			return nil, fmt.Errorf("rover: disk store: %w", err)
		}
		backend = ds
	}
	closeJournals := func() {
		for _, jl := range journals {
			jl.Close()
		}
		if backend != nil {
			backend.Close()
		}
	}
	engine := qrpc.NewServer(qrpc.ServerConfig{
		ServerID:            opts.ServerID,
		Auth:                reg,
		Workers:             workers,
		Journals:            journals,
		JournalCompactEvery: opts.JournalCompactEvery,
		MaxSessions:         opts.MaxSessions,
		SessionBudgetBytes:  opts.SessionBudgetBytes,
		ReplyCacheBytes:     opts.ReplyCacheBytes,
	})
	if err := engine.JournalError(); err != nil {
		closeJournals()
		return nil, err
	}
	srv, err := server.New(server.Config{Engine: engine, Store: backend, InvokeBudget: opts.InvokeBudget})
	if err != nil {
		closeJournals()
		return nil, err
	}
	s := &Server{engine: engine, srv: srv, backend: backend, journals: journals, opts: opts}
	if opts.SnapshotPath != "" {
		if data, err := os.ReadFile(opts.SnapshotPath); err == nil {
			_ = srv.Store().LoadSnapshot(data) // loaded existing snapshot
		}
	}
	if opts.Autotune {
		s.tuner = newAutotuner(s)
		s.tuner.start()
	}
	return s, nil
}

// openJournalShards opens the session journal's shard files: path itself is
// shard 0, "path.s1" … "path.s<n-1>" the rest. It refuses to open fewer
// shards than exist on disk — a shard-count decrease would leave the
// higher-index files' records silently unread, losing exactly-once state.
// With adopt set (Autotune), shard files beyond n are opened instead of
// refused: online growth creates them without the operator's config knowing.
func openJournalShards(path string, n int, adopt bool) ([]stable.Log, error) {
	if n <= 0 {
		n = 1
	}
	matches, _ := filepath.Glob(path + ".s*")
	for _, m := range matches {
		k, err := strconv.Atoi(strings.TrimPrefix(m, path+".s"))
		if err != nil {
			continue // not a shard file of ours (e.g. path.s1.compact mid-crash)
		}
		if k >= n {
			if !adopt {
				return nil, fmt.Errorf("rover: journal shard file %s exists but only %d shard(s) configured; shard counts may grow, never shrink", m, n)
			}
			n = k + 1
		}
	}
	logs := make([]stable.Log, 0, n)
	for i := 0; i < n; i++ {
		fl, err := stable.OpenFileLog(journalShardPath(path, i), stable.Options{})
		if err != nil {
			for _, l := range logs {
				l.Close()
			}
			return nil, fmt.Errorf("rover: session journal shard %d: %w", i, err)
		}
		logs = append(logs, fl)
	}
	return logs, nil
}

// journalShardPath names shard i's file: the journal path itself for shard
// 0, "<path>.s<i>" beyond.
func journalShardPath(path string, i int) string {
	if i == 0 {
		return path
	}
	return fmt.Sprintf("%s.s%d", path, i)
}

// Engine exposes the QRPC server engine (transport attachment).
func (s *Server) Engine() *qrpc.Server { return s.engine }

// JournalStats returns one stable-log counter snapshot per journal shard
// (empty when no journal is configured). Stats lines derive fsyncs/op and
// measured fsync latency from these.
func (s *Server) JournalStats() []stable.Stats {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	out := make([]stable.Stats, len(s.journals))
	for i, jl := range s.journals {
		out[i] = jl.Stats()
	}
	return out
}

// JournalCost reports the slowest per-shard measured fsync latency estimate
// (zero without a journal or before the first sync).
func (s *Server) JournalCost() time.Duration {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	var worst time.Duration
	for _, jl := range s.journals {
		if c := jl.Cost(); c > worst {
			worst = c
		}
	}
	return worst
}

// Store exposes the object store backend (in-memory by default, disk-backed
// when StoreDir is configured).
func (s *Server) Store() store.Backend { return s.srv.Store() }

// StoreStats reports the store's population and cache-residency counters.
func (s *Server) StoreStats() store.Occupancy { return s.srv.Store().Occupancy() }

// RegisterResolver installs a type-specific conflict resolver.
func (s *Server) RegisterResolver(typeName string, r Resolver) {
	s.srv.Resolvers().Register(typeName, r)
}

// Seed creates an object directly in the store (server-side provisioning).
func (s *Server) Seed(obj *Object) error { return s.srv.Store().Create(obj) }

// ListenTCP serves the engine on a TCP address; returns the listener
// handle (whose Addr reports the bound address).
func (s *Server) ListenTCP(addr string) (*transport.TCPServer, error) {
	return transport.ListenTCP(addr, s.engine, nil)
}

// Close stops the server's worker pool, dropping queued-but-unstarted
// requests (clients redeliver from their stable logs, so nothing is lost),
// then closes the session journal if one is configured. Transports attached
// via ListenTCP are closed separately by their handles.
func (s *Server) Close() error {
	if s.tuner != nil {
		s.tuner.stop()
	}
	s.replMu.Lock()
	rep, replTr, replLog := s.rep, s.replTr, s.replLog
	s.rep, s.replTr, s.replLog = nil, nil, nil
	s.replMu.Unlock()
	if replTr != nil {
		replTr.Close()
	}
	if rep != nil {
		rep.Close()
	}
	err := s.engine.Close()
	if replLog != nil {
		replLog.Close()
	}
	s.journalMu.Lock()
	journals := s.journals
	s.journalMu.Unlock()
	for _, jl := range journals {
		if jerr := jl.Close(); err == nil {
			err = jerr
		}
	}
	if s.backend != nil {
		if berr := s.backend.Close(); err == nil {
			err = berr
		}
	}
	return err
}

// SaveSnapshot persists the object store to the configured snapshot path
// (write to a temp file, then rename, so a crash never leaves a partial
// snapshot at the configured path).
func (s *Server) SaveSnapshot() error {
	if s.opts.SnapshotPath == "" {
		return errors.New("rover: no SnapshotPath configured")
	}
	snap := s.srv.Store().Snapshot()
	tmp := s.opts.SnapshotPath + ".tmp"
	if err := os.WriteFile(tmp, snap, 0o600); err != nil {
		return fmt.Errorf("rover: save snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.opts.SnapshotPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("rover: save snapshot rename: %w", err)
	}
	return nil
}

// ServerStats returns the application-layer counters (deltas served,
// duplicate exports absorbed); engine counters live on Engine().Stats().
func (s *Server) ServerStats() server.Stats { return s.srv.Stats() }

// ReplicationOptions configure a server's half of a replicated home pair.
// Both servers of a pair enable replication, each pointing at the other.
type ReplicationOptions struct {
	// PeerAddr, when set, immediately starts dialing the peer over TCP.
	// Leave empty and use AttachPeerTransport for in-process or simulated
	// links.
	PeerAddr string
	// KeyHex authenticates this server's replication client to the peer
	// (the peer must list "<ServerID>!repl" in its AuthKeys). Empty
	// disables proofs.
	KeyHex string
	// LogPath backs the replication stream with a stable log so a queued
	// backlog survives this server's own restart; empty selects memory.
	LogPath string
	// Instance distinguishes server incarnations that restart WITHOUT
	// their replication log (a rebuilt replica must not reuse the previous
	// incarnation's session toward the peer — see repl.ClientID). Leave
	// empty when LogPath makes the stream durable across restarts.
	Instance string
	// Clock overrides time (simulations); nil selects real time.
	Clock vtime.Clock
}

// EnableReplication turns this server into half of a replicated home pair:
// every committed store mutation and executed reply streams to the peer,
// and the peer's records are applied here. Returns the Replicator for
// stats and transport attachment. Enable replication on both servers of
// the pair.
func (s *Server) EnableReplication(opts ReplicationOptions) (*repl.Replicator, error) {
	s.replMu.Lock()
	if s.rep != nil {
		s.replMu.Unlock()
		return nil, errors.New("rover: replication already enabled")
	}
	s.replMu.Unlock()
	var key auth.Key
	if opts.KeyHex != "" {
		k, err := auth.KeyFromHex(opts.KeyHex)
		if err != nil {
			return nil, err
		}
		key = k
	}
	var log stable.Log
	if opts.LogPath != "" {
		fl, err := stable.OpenFileLog(opts.LogPath, stable.Options{})
		if err != nil {
			return nil, fmt.Errorf("rover: replication log: %w", err)
		}
		log = fl
	}
	rep, err := repl.New(repl.Config{
		ServerID: s.opts.ServerID,
		Instance: opts.Instance,
		Engine:   s.engine,
		Store:    s.srv.Store(),
		Key:      key,
		Log:      log,
		Clock:    opts.Clock,
		Kick: func() {
			s.replMu.Lock()
			tr := s.replTr
			s.replMu.Unlock()
			if tr != nil {
				tr.Kick()
			}
		},
	})
	if err != nil {
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	s.replMu.Lock()
	s.rep = rep
	s.replLog = log
	s.replMu.Unlock()
	if opts.PeerAddr != "" {
		s.ConnectPeerTCP(opts.PeerAddr)
	}
	return rep, nil
}

// Replicator returns the replication layer, or nil if not enabled.
func (s *Server) Replicator() *repl.Replicator {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.rep
}

// ConnectPeerTCP points the replication stream at the peer's TCP address,
// reconnecting with backoff like any Rover client. Requires
// EnableReplication first.
func (s *Server) ConnectPeerTCP(addr string) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.rep == nil {
		return errors.New("rover: replication not enabled")
	}
	if s.replTr != nil {
		s.replTr.Close()
	}
	s.replTr = transport.DialTCP(addr, s.rep.Client(), nil, transport.TCPClientOptions{})
	return nil
}

// AttachPeerTransport installs a custom transport toward the peer
// (in-process pipes, network simulators). Requires EnableReplication first.
func (s *Server) AttachPeerTransport(tr transport.ClientTransport) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.rep == nil {
		return errors.New("rover: replication not enabled")
	}
	s.replTr = tr
	return nil
}
